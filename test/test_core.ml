(* Tests for the LockDoc core: lock descriptors, rules and compliance,
   observation folding (WoR), hypothesis enumeration and support, winner
   selection, checker verdicts, documentation generation, and the
   violation finder — including the exact clock-example numbers of the
   paper's Tab. 1/2. *)

module Srcloc = Lockdoc_trace.Srcloc
module Layout = Lockdoc_trace.Layout
module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Filter = Lockdoc_db.Filter
module Import = Lockdoc_db.Import
module Lockdesc = Lockdoc_core.Lockdesc
module Rule = Lockdoc_core.Rule
module Dataset = Lockdoc_core.Dataset
module Hypothesis = Lockdoc_core.Hypothesis
module Selection = Lockdoc_core.Selection
module Derivator = Lockdoc_core.Derivator
module Checker = Lockdoc_core.Checker
module Docgen = Lockdoc_core.Docgen
module Violation = Lockdoc_core.Violation

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 Lockdesc} *)

let test_lockdesc_roundtrip () =
  List.iter
    (fun (s, expected) ->
      let d = Lockdesc.of_string s in
      check Alcotest.bool ("parse " ^ s) true (Lockdesc.equal d expected);
      check Alcotest.bool "reparse of to_string" true
        (Lockdesc.equal d (Lockdesc.of_string (Lockdesc.to_string d))))
    [
      ("inode_hash_lock", Lockdesc.Global "inode_hash_lock");
      ("G(rcu)", Lockdesc.Global "rcu");
      ("ES(i_lock)", Lockdesc.Es "i_lock");
      ( "EO(wb.list_lock in backing_dev_info)",
        Lockdesc.Eo ("wb.list_lock", "backing_dev_info") );
    ]

let test_lockdesc_ordering () =
  check Alcotest.bool "global < es" true
    (Lockdesc.compare (Lockdesc.Global "z") (Lockdesc.Es "a") < 0);
  check Alcotest.bool "es < eo" true
    (Lockdesc.compare (Lockdesc.Es "z") (Lockdesc.Eo ("a", "a")) < 0)

(* {2 Rule parsing and compliance} *)

let es x = Lockdesc.Es x
let g x = Lockdesc.Global x

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Lockdesc.of_string bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("accepted malformed descriptor: " ^ bad))
    [ "EO(missing_type)"; "EO(a b c d)"; "" ]

let test_rule_whitespace_tolerant () =
  let rule = Rule.parse "  ES(i_lock)   ->   G(rcu) " in
  check Alcotest.string "normalised" "ES(i_lock) -> rcu" (Rule.to_string rule)

let test_rule_roundtrip () =
  List.iter
    (fun s ->
      check Alcotest.string ("roundtrip " ^ s) s (Rule.to_string (Rule.parse s)))
    [
      "nolock";
      "ES(i_lock)";
      "inode_hash_lock -> ES(i_lock)";
      "EO(d_lock in dentry) -> rcu -> ES(d_lock)";
    ]

let test_complies_subsequence () =
  let rule = [ g "a"; g "b" ] in
  check Alcotest.bool "exact" true (Rule.complies ~rule ~held:[ g "a"; g "b" ]);
  check Alcotest.bool "gap allowed" true
    (Rule.complies ~rule ~held:[ g "a"; g "c"; g "b" ]);
  check Alcotest.bool "wrong order" false
    (Rule.complies ~rule ~held:[ g "b"; g "a" ]);
  check Alcotest.bool "missing lock" false (Rule.complies ~rule ~held:[ g "a" ]);
  check Alcotest.bool "empty rule complies with anything" true
    (Rule.complies ~rule:[] ~held:[]);
  check Alcotest.bool "prefix extra" true
    (Rule.complies ~rule ~held:[ g "x"; g "a"; g "b"; g "y" ])

let test_subsequences_count () =
  let subs = Rule.subsequences [ g "a"; g "b"; g "c" ] in
  check Alcotest.int "2^3 ordered subsets" 8 (List.length subs);
  (* Each is order-preserving, hence complies with the original list. *)
  List.iter
    (fun rule ->
      check Alcotest.bool "subsequence complies" true
        (Rule.complies ~rule ~held:[ g "a"; g "b"; g "c" ]))
    subs

let test_subsequences_dedup_recursion () =
  (* A recursively re-acquired lock appears once. *)
  let subs = Rule.subsequences [ g "rcu"; g "rcu" ] in
  check Alcotest.int "deduplicated" 2 (List.length subs)

let test_permuted_subsets () =
  let perms = Rule.permuted_subsets [ g "a"; g "b" ] in
  (* {}, {a}, {b}, {ab}, {ba} *)
  check Alcotest.int "count" 5 (List.length perms)

let test_dedup_rules_structural () =
  (* The rule notation is ambiguous: a global lock literally named
     "ES(i_lock)" renders exactly like the embedded-in-same descriptor
     Es "i_lock". Dedup keys on the structural compare, so the two must
     both survive — a to_string-keyed dedup would collapse them. *)
  let global = [ Lockdesc.Global "ES(i_lock)" ] in
  let embedded = [ Lockdesc.Es "i_lock" ] in
  check Alcotest.string "renderings collide" (Rule.to_string global)
    (Rule.to_string embedded);
  check Alcotest.bool "but the rules differ" false (Rule.equal global embedded);
  check Alcotest.int "structural dedup keeps both" 2
    (List.length (Rule.dedup_rules [ global; embedded; global; embedded ]));
  (* Structurally equal rules collapse however they were constructed. *)
  let direct = [ Lockdesc.Eo ("j_lock", "journal_t"); Lockdesc.Global "wq_lock" ] in
  let parsed = Rule.parse "EO(j_lock in journal_t) -> wq_lock" in
  check Alcotest.bool "equal rules" true (Rule.equal direct parsed);
  check
    (Alcotest.list Alcotest.string)
    "equal rules collapse to the first"
    [ Rule.to_string direct ]
    (List.map Rule.to_string (Rule.dedup_rules [ direct; parsed ]));
  (* Order-preserving: first occurrence wins. *)
  let a = [ g "a" ] and b = [ g "b" ] in
  check
    (Alcotest.list Alcotest.string)
    "first occurrences, input order"
    [ "b"; "a" ]
    (List.map Rule.to_string (Rule.dedup_rules [ b; a; b; a ]))

let rule_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (oneof
         [
           map (fun i -> g (Printf.sprintf "g%d" i)) (int_bound 5);
           map (fun i -> es (Printf.sprintf "m%d" i)) (int_bound 5);
         ]))

let prop_rule_roundtrip =
  QCheck.Test.make ~name:"rule notation roundtrip" ~count:300
    (QCheck.make rule_gen) (fun rule ->
      Rule.equal rule (Rule.parse (Rule.to_string rule)))

let prop_complies_insert_monotone =
  (* Inserting unrelated locks anywhere preserves compliance. *)
  QCheck.Test.make ~name:"compliance is insertion-monotone" ~count:300
    QCheck.(pair (make rule_gen) (int_bound 10))
    (fun (held, pos) ->
      let rule = Rule.subsequences held |> List.hd in
      (* hd is the full dedup'd list itself *)
      let extra = g "unrelated_xyz" in
      let pos = min pos (List.length held) in
      let held' =
        List.filteri (fun i _ -> i < pos) held
        @ [ extra ]
        @ List.filteri (fun i _ -> i >= pos) held
      in
      (not (Rule.complies ~rule ~held)) || Rule.complies ~rule ~held:held')

(* {2 The clock example: paper Tab. 1/2 exact numbers} *)

let clock_pipeline () =
  let trace = Lockdoc_ksim.Clock_example.run () in
  let store, _ = Import.run trace in
  Dataset.of_store store

let test_clock_minutes_support () =
  let dataset = clock_pipeline () in
  let obs = Dataset.by_member dataset "clock" ~member:"minutes" ~kind:Rule.W in
  check Alcotest.int "17 write observations" 17 (List.length obs);
  let sa rule = (Hypothesis.support_of rule obs).Hypothesis.sa in
  check Alcotest.int "no lock" 17 (sa []);
  check Alcotest.int "sec_lock" 17 (sa [ g "sec_lock" ]);
  check Alcotest.int "sec -> min" 16 (sa [ g "sec_lock"; g "min_lock" ]);
  check Alcotest.int "min_lock" 16 (sa [ g "min_lock" ]);
  check Alcotest.int "min -> sec (never)" 0 (sa [ g "min_lock"; g "sec_lock" ])

let test_clock_selection_strategies () =
  let dataset = clock_pipeline () in
  let obs = Dataset.by_member dataset "clock" ~member:"minutes" ~kind:Rule.W in
  let scored = Hypothesis.enumerate obs in
  (* The paper's strategy picks the true two-lock rule... *)
  let lockdoc = Selection.select ~tac:0.9 scored in
  check Alcotest.string "lockdoc winner" "sec_lock -> min_lock"
    (Rule.to_string lockdoc.Hypothesis.rule);
  (* ...whereas the naïve highest-support strategy is fooled by the
     enclosing lock (paper Sec. 4.3). *)
  let naive = Selection.select ~strategy:Selection.Naive ~tac:0.9 scored in
  check Alcotest.string "naive winner" "sec_lock"
    (Rule.to_string naive.Hypothesis.rule)

let test_clock_seconds_rule () =
  let dataset = clock_pipeline () in
  let mined =
    Derivator.derive_member dataset "clock" ~member:"seconds" ~kind:Rule.W
  in
  check Alcotest.string "seconds w rule" "sec_lock"
    (Rule.to_string mined.Derivator.m_winner)

let test_clock_wor_folding () =
  (* seconds is read and written within transaction a: the observation
     must be a write (WoR), so no read observation exists under a-only
     transactions except... reads fold away entirely. *)
  let dataset = clock_pipeline () in
  let reads = Dataset.by_member dataset "clock" ~member:"seconds" ~kind:Rule.R in
  check Alcotest.int "reads folded into writes" 0 (List.length reads)

(* {2 Selection edge cases} *)

let scored_of l =
  List.map
    (fun (rule, sa, sr) -> { Hypothesis.rule; support = { Hypothesis.sa; sr } })
    l

let test_selection_tie_prefers_more_locks () =
  let scored =
    scored_of
      [
        ([], 10, 1.0);
        ([ g "a" ], 10, 1.0);
        ([ g "a"; g "b" ], 10, 1.0);
      ]
  in
  let w = Selection.select ~tac:0.9 scored in
  check Alcotest.string "most locks wins ties" "a -> b"
    (Rule.to_string w.Hypothesis.rule)

let test_selection_threshold_rejects () =
  let scored = scored_of [ ([], 10, 1.0); ([ g "a" ], 8, 0.8) ] in
  let w = Selection.select ~tac:0.9 scored in
  check Alcotest.string "below threshold -> no lock" "nolock"
    (Rule.to_string w.Hypothesis.rule)

let prop_winner_at_least_tac =
  QCheck.Test.make ~name:"winner support >= tac" ~count:200
    QCheck.(
      pair (float_range 0.5 1.0)
        (list_of_size (Gen.int_bound 6)
           (pair (make rule_gen) (float_range 0. 1.))))
    (fun (tac, raw) ->
      let scored =
        { Hypothesis.rule = []; support = { Hypothesis.sa = 10; sr = 1.0 } }
        :: List.map
             (fun (rule, sr) ->
               { Hypothesis.rule; support = { Hypothesis.sa = 1; sr } })
             raw
      in
      let w = Selection.select ~tac scored in
      w.Hypothesis.support.Hypothesis.sr >= tac)

(* {2 Checker} *)

let test_checker_verdicts () =
  let dataset = clock_pipeline () in
  let correct =
    Checker.check_rule dataset ~ty:"clock" ~member:"seconds" ~kind:Rule.W
      (Rule.parse "sec_lock")
  in
  check Alcotest.string "correct" "correct"
    (Checker.verdict_to_string correct.Checker.c_verdict);
  let ambivalent =
    Checker.check_rule dataset ~ty:"clock" ~member:"minutes" ~kind:Rule.W
      (Rule.parse "min_lock")
  in
  check Alcotest.string "ambivalent" "ambivalent"
    (Checker.verdict_to_string ambivalent.Checker.c_verdict);
  let incorrect =
    Checker.check_rule dataset ~ty:"clock" ~member:"minutes" ~kind:Rule.W
      (Rule.parse "min_lock -> sec_lock")
  in
  check Alcotest.string "incorrect" "incorrect"
    (Checker.verdict_to_string incorrect.Checker.c_verdict);
  let unobserved =
    Checker.check_rule dataset ~ty:"clock" ~member:"seconds" ~kind:Rule.R
      (Rule.parse "sec_lock")
  in
  check Alcotest.string "unobserved" "unobserved"
    (Checker.verdict_to_string unobserved.Checker.c_verdict)

let test_checker_summary () =
  let checked =
    [
      Checker.
        { c_type = "t"; c_member = "m1"; c_kind = Rule.W; c_rule = [];
          c_support = { Hypothesis.sa = 1; sr = 1. }; c_verdict = Correct };
      Checker.
        { c_type = "t"; c_member = "m2"; c_kind = Rule.W; c_rule = [];
          c_support = { Hypothesis.sa = 0; sr = 0. }; c_verdict = Unobserved };
      Checker.
        { c_type = "t"; c_member = "m3"; c_kind = Rule.R; c_rule = [];
          c_support = { Hypothesis.sa = 1; sr = 0.5 }; c_verdict = Ambivalent };
    ]
  in
  let s = Checker.summarise checked "t" in
  check Alcotest.int "#R" 3 s.Checker.s_rules;
  check Alcotest.int "#No" 1 s.Checker.s_unobserved;
  check Alcotest.int "#Ob" 2 s.Checker.s_observed;
  check Alcotest.int "correct" 1 s.Checker.s_correct;
  check Alcotest.int "ambivalent" 1 s.Checker.s_ambivalent

(* {2 Docgen} *)

let test_docgen_groups () =
  let mined =
    [
      Derivator.
        { m_type = "inode"; m_member = "i_x"; m_kind = Rule.W; m_total = 5;
          m_winner = [ es "i_lock" ];
          m_support = { Hypothesis.sa = 5; sr = 1. }; m_hypotheses = [] };
      Derivator.
        { m_type = "inode"; m_member = "i_y"; m_kind = Rule.W; m_total = 5;
          m_winner = [ es "i_lock" ];
          m_support = { Hypothesis.sa = 5; sr = 1. }; m_hypotheses = [] };
      Derivator.
        { m_type = "inode"; m_member = "i_z"; m_kind = Rule.W; m_total = 5;
          m_winner = []; m_support = { Hypothesis.sa = 5; sr = 1. };
          m_hypotheses = [] };
    ]
  in
  let doc = Docgen.generate ~title:"inode" mined in
  let contains s sub =
    let nl = String.length sub and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "no-lock section first" true
    (contains doc "No locks needed for:");
  check Alcotest.bool "grouped rule" true (contains doc "ES(i_lock) protects:");
  check Alcotest.bool "members joined" true (contains doc "i_x, i_y")

let test_docgen_wraps_long_lists () =
  let mined =
    List.init 20 (fun i ->
        Derivator.
          {
            m_type = "inode";
            m_member = Printf.sprintf "member_with_long_name_%02d" i;
            m_kind = Rule.W;
            m_total = 1;
            m_winner = [ es "i_lock" ];
            m_support = { Hypothesis.sa = 1; sr = 1. };
            m_hypotheses = [];
          })
  in
  let doc = Docgen.generate ~title:"inode" mined in
  List.iter
    (fun line ->
      check Alcotest.bool "comment lines stay narrow" true
        (String.length line <= 80))
    (String.split_on_char '\n' doc)

(* {2 Violation finder on a synthetic trace} *)

let widget =
  Layout.make ~name:"widget"
    [ ("w_a", 8, Layout.Data); ("w_lock", 4, Layout.Lock) ]

let test_violation_finder () =
  let base = 0x100000 in
  let loc = Srcloc.make "w.c" 3 in
  let sink = Trace.sink () in
  List.iter (Trace.emit sink)
    ([ Event.Ctx_switch { pid = 1; kind = Event.Task };
       Event.Alloc { ptr = base; size = 12; data_type = "widget"; subclass = None } ]
    @ List.concat
        (List.init 20 (fun _ ->
             [
               Event.Lock_acquire
                 { lock_ptr = base + 8; kind = Event.Spinlock;
                   side = Event.Exclusive; name = "w_lock"; loc };
               Event.Mem_access { ptr = base; size = 8; kind = Event.Write; loc };
               Event.Lock_release { lock_ptr = base + 8; loc };
             ]))
    @ [ Event.Fun_enter { fn = "sloppy_writer"; loc };
        Event.Mem_access { ptr = base; size = 8; kind = Event.Write; loc };
        Event.Fun_exit { fn = "sloppy_writer" } ]);
  let trace = Trace.finish ~layouts:[ widget ] sink in
  let store, _ = Import.run ~filter:Filter.empty trace in
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_all dataset in
  let m =
    List.find
      (fun m -> m.Derivator.m_member = "w_a" && m.Derivator.m_kind = Rule.W)
      mined
  in
  check Alcotest.string "winner" "ES(w_lock)" (Rule.to_string m.Derivator.m_winner);
  let violations = Violation.find dataset mined in
  check Alcotest.int "one violation" 1 (List.length violations);
  let v = List.hd violations in
  check Alcotest.string "member" "w_a" v.Violation.v_member;
  check (Alcotest.list Alcotest.string) "stack names the culprit"
    [ "sloppy_writer" ] v.Violation.v_stack;
  check Alcotest.bool "no locks held" true (v.Violation.v_held = []);
  let s = Violation.summarise violations "widget" in
  check Alcotest.int "events" 1 s.Violation.vs_events;
  check Alcotest.int "contexts" 1 s.Violation.vs_contexts

let test_violation_none_when_perfect () =
  let base = 0x100000 in
  let loc = Srcloc.make "w.c" 3 in
  let sink = Trace.sink () in
  List.iter (Trace.emit sink)
    ([ Event.Ctx_switch { pid = 1; kind = Event.Task };
       Event.Alloc { ptr = base; size = 12; data_type = "widget"; subclass = None } ]
    @ List.concat
        (List.init 5 (fun _ ->
             [
               Event.Lock_acquire
                 { lock_ptr = base + 8; kind = Event.Spinlock;
                   side = Event.Exclusive; name = "w_lock"; loc };
               Event.Mem_access { ptr = base; size = 8; kind = Event.Write; loc };
               Event.Lock_release { lock_ptr = base + 8; loc };
             ])));
  let trace = Trace.finish ~layouts:[ widget ] sink in
  let store, _ = Import.run ~filter:Filter.empty trace in
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_all dataset in
  check Alcotest.int "no violations" 0
    (List.length (Violation.find dataset mined))

let () =
  Alcotest.run "core"
    [
      ( "lockdesc",
        [
          Alcotest.test_case "roundtrip" `Quick test_lockdesc_roundtrip;
          Alcotest.test_case "ordering" `Quick test_lockdesc_ordering;
        ] );
      ( "rule",
        [
          Alcotest.test_case "roundtrip" `Quick test_rule_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "whitespace tolerant" `Quick test_rule_whitespace_tolerant;
          Alcotest.test_case "compliance semantics" `Quick test_complies_subsequence;
          Alcotest.test_case "subsequences" `Quick test_subsequences_count;
          Alcotest.test_case "recursion dedup" `Quick test_subsequences_dedup_recursion;
          Alcotest.test_case "permuted subsets" `Quick test_permuted_subsets;
          Alcotest.test_case "structural dedup" `Quick test_dedup_rules_structural;
          qtest prop_rule_roundtrip;
          qtest prop_complies_insert_monotone;
        ] );
      ( "clock example",
        [
          Alcotest.test_case "Tab.2 support values" `Quick test_clock_minutes_support;
          Alcotest.test_case "selection strategies" `Quick test_clock_selection_strategies;
          Alcotest.test_case "seconds rule" `Quick test_clock_seconds_rule;
          Alcotest.test_case "WoR folding" `Quick test_clock_wor_folding;
        ] );
      ( "selection",
        [
          Alcotest.test_case "tie prefers more locks" `Quick
            test_selection_tie_prefers_more_locks;
          Alcotest.test_case "threshold rejects" `Quick test_selection_threshold_rejects;
          qtest prop_winner_at_least_tac;
        ] );
      ( "checker",
        [
          Alcotest.test_case "verdicts" `Quick test_checker_verdicts;
          Alcotest.test_case "summary" `Quick test_checker_summary;
        ] );
      ( "docgen",
        [
          Alcotest.test_case "groups" `Quick test_docgen_groups;
          Alcotest.test_case "wrapping" `Quick test_docgen_wraps_long_lists;
        ] );
      ( "violations",
        [
          Alcotest.test_case "finder" `Quick test_violation_finder;
          Alcotest.test_case "perfect code is clean" `Quick
            test_violation_none_when_perfect;
        ] );
    ]
