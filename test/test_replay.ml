(* Counterexample-replay suite: structured scheduler halts, controller
   units, witness JSON round-trips, and the seeded/clean replay
   acceptance matrix over every workload family.

   [LOCKDOC_REPLAY_FAMILIES] (default 2 under `dune runtest`) bounds how
   many families the matrix covers; the @replay alias runs all six. *)

module Kernel = Lockdoc_ksim.Kernel
module Run = Lockdoc_ksim.Run
module Seeded = Lockdoc_ksim.Seeded
module Replay = Lockdoc_sanitizer.Replay
module Crossval = Lockdoc_sanitizer.Crossval
module Json = Lockdoc_obs.Json
module Srcloc = Lockdoc_trace.Srcloc

let families () =
  let n =
    match Sys.getenv_opt "LOCKDOC_REPLAY_FAMILIES" with
    | Some s -> ( try int_of_string s with _ -> 2)
    | None -> 2
  in
  List.filteri (fun i _ -> i < n) Run.workload_names

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* {2 Structured halt diagnostics} *)

let test_budget_halt () =
  let config =
    {
      Kernel.default_config with
      hardirq_rate = 0.;
      softirq_rate = 0.;
      max_steps = 200;
    }
  in
  match
    Kernel.run ~config ~layouts:[] (fun () ->
        Kernel.spawn "spin-a" (fun () ->
            while true do
              Kernel.preempt_point ()
            done);
        Kernel.spawn "spin-b" (fun () ->
            while true do
              Kernel.preempt_point ()
            done))
  with
  | _ -> Alcotest.fail "expected Stuck"
  | exception Kernel.Stuck h ->
      Alcotest.(check bool) "not a deadlock" false h.Kernel.h_deadlock;
      Alcotest.(check int) "budget recorded" 200 h.Kernel.h_budget;
      Alcotest.(check bool) "steps beyond budget" true (h.Kernel.h_steps > 200);
      let runnable =
        List.filter
          (fun f -> f.Kernel.fl_state = Kernel.Fl_runnable)
          h.Kernel.h_flows
      in
      Alcotest.(check int) "both spinners still runnable" 2
        (List.length runnable);
      let msg = Kernel.describe_halt h in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (name ^ " listed in description")
            true (contains ~sub:name msg))
        [ "spin-a"; "spin-b" ]

let test_deadlock_halt () =
  let config =
    { Kernel.default_config with hardirq_rate = 0.; softirq_rate = 0. }
  in
  match
    Kernel.run ~config ~layouts:[] (fun () ->
        Kernel.spawn "waiter-1" (fun () ->
            Kernel.wait_until "first impossible condition" (fun () -> false));
        Kernel.spawn "waiter-2" (fun () ->
            Kernel.wait_until "second impossible condition" (fun () -> false)))
  with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Kernel.Deadlock h ->
      Alcotest.(check bool) "flagged as deadlock" true h.Kernel.h_deadlock;
      let blocked =
        List.filter_map
          (fun f ->
            match f.Kernel.fl_state with
            | Kernel.Fl_blocked reason -> Some (f.Kernel.fl_name, reason)
            | _ -> None)
          h.Kernel.h_flows
      in
      Alcotest.(check int) "both waiters blocked" 2 (List.length blocked);
      Alcotest.(check (option string))
        "wait reason carried"
        (Some "first impossible condition")
        (List.assoc_opt "waiter-1" blocked);
      Alcotest.(check bool) "description carries the wait reason" true
        (contains ~sub:"second impossible condition"
           (Kernel.describe_halt h))

(* {2 Controller units} *)

(* A breakpoint on an access that never executes: the search terminates
   normally, explores zero schedules and refutes with budget
   exhaustion. *)
let test_never_executed_breakpoint () =
  let target =
    Replay.Race_target { rt_type = "no_such_type"; rt_member = "ghost" }
  in
  let out, total =
    Replay.search ~seed:11 ~bugs:false ~workload:"fs_inod" [ target ]
  in
  Alcotest.(check int) "no directed schedules spent" 0 total;
  match out with
  | [ (t, Replay.Refuted Replay.Budget_exhausted, 0) ] ->
      Alcotest.(check string) "target id" "no_such_type.ghost"
        (Replay.target_id t)
  | _ -> Alcotest.fail "expected a single budget-exhausted refutation"

(* preempt_now must refuse to yield inside spin critical sections and in
   irq context, and succeed elsewhere. *)
let test_forced_switch_respects_atomicity () =
  let refused = ref 0 and allowed = ref 0 in
  let control =
    {
      Kernel.ctl_on_access =
        (fun v ->
          if v.Kernel.av_preempt_off || v.Kernel.av_in_irq then begin
            if Kernel.preempt_now () then
              Alcotest.fail "preempt_now yielded in an atomic section"
            else incr refused
          end
          else if !allowed < 5 && Kernel.preempt_now () then incr allowed);
      ctl_on_event = (fun _ -> ());
      ctl_pick = (fun _ -> None);
    }
  in
  ignore (Run.replay_trace ~seed:13 ~control ~bugs:false "fs_bench");
  Alcotest.(check bool) "saw atomic-section accesses" true (!refused > 0);
  Alcotest.(check bool) "forced switches happened elsewhere" true (!allowed > 0)

(* {2 Witness JSON round-trip} *)

let sample_verdicts =
  [
    Replay.Confirmed
      [
        {
          Replay.st_pid = 3;
          st_flow = "fs-bench";
          st_action = "about to write super_block.s_dirt";
          st_loc = Srcloc.make "fs/inode.c" 507;
          st_held = [];
        };
        {
          Replay.st_pid = 5;
          st_flow = "fs_bench-replay-a";
          st_action = "writes super_block.s_dirt with no common lock held";
          st_loc = Srcloc.make "fs/inode.c" 509;
          st_held = [ "super_block.s_umount" ];
        };
      ];
    Replay.Refuted (Replay.Caller_holds_lock "inode.i_lock");
    Replay.Refuted Replay.Rcu_read_section;
    Replay.Refuted Replay.Quiescent_init_teardown;
    Replay.Refuted Replay.Budget_exhausted;
  ]

let test_witness_roundtrip () =
  List.iter
    (fun v ->
      let j = Replay.verdict_to_json v in
      match Json.of_string (Json.to_string j) with
      | Error e -> Alcotest.fail ("re-parse failed: " ^ e)
      | Ok j' ->
          Alcotest.(check bool) "json round-trips structurally" true
            (Json.equal j j');
          (match Replay.verdict_of_json j' with
          | Error e -> Alcotest.fail ("verdict_of_json failed: " ^ e)
          | Ok v' ->
              Alcotest.(check bool) "verdict round-trips exactly" true (v = v')))
    sample_verdicts

let test_verdict_of_json_rejects () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> Alcotest.fail "test input must parse as json"
      | Ok j -> (
          match Replay.verdict_of_json j with
          | Ok _ -> Alcotest.fail ("accepted malformed verdict: " ^ s)
          | Error _ -> ()))
    [
      {|{"status":"confirmed"}|};
      {|{"status":"refuted","why":{"kind":"caller_holds_lock"}}|};
      {|{"status":"maybe"}|};
      {|{"status":"refuted","why":{"kind":"gremlins"}}|};
    ]

(* {2 Seeded / clean acceptance matrix} *)

let confirmed_ids (r : Replay.report) =
  List.filter_map
    (fun (o : Replay.outcome) ->
      match o.Replay.o_verdict with
      | Replay.Confirmed _ -> Some (Replay.target_id o.Replay.o_target)
      | Replay.Refuted _ -> None)
    r.Replay.r_outcomes

let test_seeded_family workload () =
  let r = Replay.run ~seed:7 ~bugs:true workload in
  Alcotest.(check (float 1e-9))
    "post-triage race precision" 1.0
    r.Replay.r_races_post.Crossval.cv_precision;
  Alcotest.(check (float 1e-9))
    "post-triage race recall" 1.0 r.Replay.r_races_post.Crossval.cv_recall;
  Alcotest.(check (float 1e-9))
    "post-triage irq precision" 1.0 r.Replay.r_irq_post.Crossval.cv_precision;
  Alcotest.(check (float 1e-9))
    "post-triage irq recall" 1.0 r.Replay.r_irq_post.Crossval.cv_recall;
  List.iter
    (fun (o : Replay.outcome) ->
      match o.Replay.o_verdict with
      | Replay.Confirmed steps ->
          Alcotest.(check bool) "witness has at least two steps" true
            (List.length steps >= 2);
          let pids =
            List.sort_uniq compare (List.map (fun s -> s.Replay.st_pid) steps)
          in
          Alcotest.(check bool) "witness spans two flows" true
            (List.length pids >= 2)
      | Replay.Refuted _ -> ())
    r.Replay.r_outcomes

let test_clean_family workload () =
  let r = Replay.run ~seed:7 ~bugs:false workload in
  Alcotest.(check (list string)) "clean trace: zero confirmed" []
    (confirmed_ids r)

(* Across all six families, every declared seeded site — the races and
   the irq-unsafe class — must come back Confirmed somewhere. *)
let test_union_covers_all_seeded_sites () =
  let confirmed =
    List.concat_map
      (fun w -> confirmed_ids (Replay.run ~seed:7 ~bugs:true w))
      Run.workload_names
    |> List.sort_uniq compare
  in
  let declared =
    List.sort_uniq compare
      (List.map (fun (_, (ty, m)) -> ty ^ "." ^ m) Seeded.race_sites
      @ List.map snd Seeded.irq_sites)
  in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (site ^ " confirmed in some family")
        true (List.mem site confirmed))
    declared

let test_jobs_identical () =
  let j1 = Replay.to_json (Replay.run ~jobs:1 ~seed:7 ~bugs:true "fs_bench") in
  let j4 = Replay.to_json (Replay.run ~jobs:4 ~seed:7 ~bugs:true "fs_bench") in
  Alcotest.(check string) "-j 4 byte-identical to -j 1" j1 j4

let () =
  let matrix name f =
    List.map
      (fun w -> Alcotest.test_case (name ^ " " ^ w) `Slow (f w))
      (families ())
  in
  Alcotest.run "replay"
    [
      ( "halts",
        [
          Alcotest.test_case "budget halt lists runnable flows" `Quick
            test_budget_halt;
          Alcotest.test_case "deadlock halt carries wait reasons" `Quick
            test_deadlock_halt;
        ] );
      ( "controller",
        [
          Alcotest.test_case "never-executed breakpoint terminates" `Quick
            test_never_executed_breakpoint;
          Alcotest.test_case "forced switch respects atomic sections" `Slow
            test_forced_switch_respects_atomicity;
        ] );
      ( "witness-json",
        [
          Alcotest.test_case "verdicts round-trip" `Quick test_witness_roundtrip;
          Alcotest.test_case "malformed verdicts rejected" `Quick
            test_verdict_of_json_rejects;
        ] );
      ("seeded", matrix "seeded" test_seeded_family);
      ("clean", matrix "clean" test_clean_family);
      ( "union",
        [
          Alcotest.test_case "all seeded sites confirmed across families"
            `Slow test_union_covers_all_seeded_sites;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j 1 vs -j 4 identical" `Slow test_jobs_identical;
        ] );
    ]
