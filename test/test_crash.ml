(* Crash-injection fuzzing of the durability layer.

   For every ksim workload family, a golden uninterrupted durable
   import fixes the expected stats, derived rules and violation report
   — and, via the crash-point hit counter, the number of seedable kill
   points its import contains. Then, per pinned seed:

   1. arm a crash at a seed-chosen point and run the durable import —
      it must die with Crashpoint.Crash somewhere in the WAL /
      snapshot / manifest / event-loop machinery;
   2. optionally corrupt the tail of the surviving WAL (truncation,
      bit flip, torn final record — seed-chosen);
   3. `Durable.recover` must not raise and must yield a consistent
      prefix of the golden store;
   4. resuming `Durable.import` over the same directory must complete
      and produce stats, derived rules and violations byte-identical
      to the uninterrupted run.

   The default run keeps the seed bank small so `dune runtest` stays
   fast; `dune build @crash` (or LOCKDOC_CRASH_SEEDS=n) widens it to
   >= 50 kill points across the 6 families. *)

module Trace = Lockdoc_trace.Trace
module Store = Lockdoc_db.Store
module Import = Lockdoc_db.Import
module Durable = Lockdoc_db.Durable
module Crashpoint = Lockdoc_db.Crashpoint
module Run = Lockdoc_ksim.Run
module Prng = Lockdoc_util.Prng
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report

let check = Alcotest.check

(* Metrics on for the whole suite: golden-vs-resumed byte comparisons
   double as evidence that recording never leaks into analysis bytes,
   durable checkpoints included. *)
let () = Lockdoc_obs.Obs.set_enabled true

let n_seeds =
  match Sys.getenv_opt "LOCKDOC_CRASH_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 3)
  | None -> 3

(* Small enough that even the shortest family crosses several
   checkpoint boundaries. *)
let checkpoint_every = 5_000

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

type golden = {
  go_trace : Trace.t;
  go_stats : Import.stats;
  go_rules : string;
  go_violations : string;
  go_hits : int; (* crash points in one uninterrupted durable import *)
  go_accesses : int;
}

let reports store =
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_all dataset in
  ( Report.mined_to_json mined,
    Report.violations_to_json (Violation.find dataset mined) )

(* One golden run per family, shared across all seeds. *)
let goldens =
  lazy
    (List.map
       (fun name ->
         let trace = Run.workload_trace ~seed:11 name in
         let dir = temp_dir "lockdoc_golden" in
         Fun.protect
           ~finally:(fun () -> rm_rf dir)
           (fun () ->
             Crashpoint.reset ();
             let store, stats, _ =
               Durable.import ~dir ~checkpoint_every trace
             in
             let hits = Crashpoint.hits () in
             let rules, violations = reports store in
             ( name,
               {
                 go_trace = trace;
                 go_stats = stats;
                 go_rules = rules;
                 go_violations = violations;
                 go_hits = hits;
                 go_accesses = Store.n_accesses store;
               } )))
       Run.workload_names)

let test_crash_recover_resume () =
  List.iter
    (fun (name, g) ->
      for seed = 0 to n_seeds - 1 do
        let id = Printf.sprintf "%s/seed %d" name seed in
        let prng = Prng.of_int (Hashtbl.hash (name, seed)) in
        let kill_at = 1 + Prng.int prng g.go_hits in
        let dir = temp_dir "lockdoc_crash" in
        Fun.protect
          ~finally:(fun () ->
            Crashpoint.reset ();
            rm_rf dir)
          (fun () ->
            (* 1: the armed import must die at the chosen point. *)
            Crashpoint.reset ();
            Crashpoint.arm ~after:kill_at;
            (match Durable.import ~dir ~checkpoint_every g.go_trace with
            | _ ->
                Alcotest.failf "%s: import survived armed crash at hit %d" id
                  kill_at
            | exception Crashpoint.Crash _ -> ()
            | exception e ->
                Alcotest.failf "%s: import died with %s, not Crash" id
                  (Printexc.to_string e));
            Crashpoint.reset ();
            (* 2: for 3 of 4 seeds, additionally corrupt the WAL tail. *)
            if seed mod 4 <> 0 then
              ignore (Crashpoint.corrupt_tail ~dir ~seed:(seed * 7919 + 13));
            (* 3: recovery must never raise, and must be a prefix. *)
            (match Durable.recover ~dir with
            | r ->
                if Store.n_accesses r.Durable.r_store > g.go_accesses then
                  Alcotest.failf "%s: recovered MORE than the golden run" id
            | exception e ->
                Alcotest.failf "%s: recover raised %s" id
                  (Printexc.to_string e));
            (* 4: the resumed import matches the uninterrupted run. *)
            match Durable.import ~dir ~checkpoint_every g.go_trace with
            | store, stats, _ ->
                if stats <> g.go_stats then
                  Alcotest.failf "%s: stats differ after resume" id;
                let rules, violations = reports store in
                check Alcotest.string (id ^ ": derived rules") g.go_rules
                  rules;
                check Alcotest.string (id ^ ": violation report")
                  g.go_violations violations
            | exception e ->
                Alcotest.failf "%s: resumed import raised %s" id
                  (Printexc.to_string e))
      done)
    (Lazy.force goldens)

let test_kill_points_exist () =
  (* The harness is only meaningful if each family exposes plenty of
     distinct kill points. *)
  List.iter
    (fun (name, g) ->
      if g.go_hits < 100 then
        Alcotest.failf "%s: only %d crash points" name g.go_hits)
    (Lazy.force goldens)

let () =
  Alcotest.run "crash"
    [
      ( "injection",
        [
          Alcotest.test_case "kill points exist" `Quick test_kill_points_exist;
          Alcotest.test_case
            (Printf.sprintf "crash/recover/resume (%d seeds x %d families)"
               n_seeds
               (List.length Run.workload_names))
            `Slow test_crash_recover_resume;
        ] );
    ]
