(* Unit and property tests for the utility kit: PRNG, statistics, growable
   vectors and table rendering. *)

module Prng = Lockdoc_util.Prng
module Stats = Lockdoc_util.Stats
module Vec = Lockdoc_util.Vec
module Tablefmt = Lockdoc_util.Tablefmt
module Fnv = Lockdoc_util.Fnv
module Numarg = Lockdoc_util.Numarg

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* {2 Prng} *)

let test_prng_deterministic () =
  let a = Prng.of_int 1234 and b = Prng.of_int 1234 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_prng_copy () =
  let a = Prng.of_int 99 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Prng.of_int 7 in
  let b = Prng.split a in
  (* The split stream must not equal the parent's continuation. *)
  let pa = Prng.next_int64 a and pb = Prng.next_int64 b in
  check Alcotest.bool "split differs from parent" true (pa <> pb)

let test_prng_weighted () =
  let rng = Prng.of_int 3 in
  for _ = 1 to 200 do
    let x = Prng.weighted rng [ (1, `A); (0, `B) ] in
    check Alcotest.bool "zero-weight choice never picked" true (x = `A)
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.of_int 5 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "shuffle is a permutation"
    (Array.init 20 Fun.id) sorted

let prop_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.of_int seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Prng.of_int seed in
      let hi = lo + span in
      let x = Prng.int_in rng lo hi in
      x >= lo && x <= hi)

let prop_float_bounds =
  QCheck.Test.make ~name:"Prng.float stays within bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 100.))
    (fun (seed, bound) ->
      let rng = Prng.of_int seed in
      let x = Prng.float rng bound in
      x >= 0. && x < bound)

(* {2 Stats} *)

let test_mean () =
  check (Alcotest.float 1e-9) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check (Alcotest.float 1e-9) "mean of empty" 0. (Stats.mean [])

let test_percentage () =
  check (Alcotest.float 1e-9) "50%" 50. (Stats.percentage 1 2);
  check (Alcotest.float 1e-9) "whole zero" 0. (Stats.percentage 5 0)

let test_percentile () =
  let xs = [ 5.; 1.; 3.; 2.; 4. ] in
  check (Alcotest.float 1e-9) "median" 3. (Stats.percentile 0.5 xs);
  check (Alcotest.float 1e-9) "max" 5. (Stats.percentile 1.0 xs);
  check (Alcotest.float 1e-9) "min-ish" 1. (Stats.percentile 0.0 xs)

let test_counter () =
  let c = Stats.counter () in
  Stats.incr c "a";
  Stats.incr c "a";
  Stats.add c "b" 3;
  check Alcotest.int "count a" 2 (Stats.count c "a");
  check Alcotest.int "count b" 3 (Stats.count c "b");
  check Alcotest.int "count missing" 0 (Stats.count c "zz");
  check Alcotest.int "total" 5 (Stats.total c);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "alist sorted" [ ("a", 2); ("b", 3) ] (Stats.to_alist c)

(* {2 Vec} *)

let test_vec_basic () =
  let v = Vec.create () in
  check Alcotest.int "empty length" 0 (Vec.length v);
  let i0 = Vec.push v "x" in
  let i1 = Vec.push v "y" in
  check Alcotest.int "index 0" 0 i0;
  check Alcotest.int "index 1" 1 i1;
  check Alcotest.string "get" "y" (Vec.get v 1);
  Vec.set v 0 "z";
  check Alcotest.string "set" "z" (Vec.get v 0);
  check (Alcotest.list Alcotest.string) "to_list" [ "z"; "y" ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Alcotest.check_raises "negative index" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "index past end" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  check Alcotest.int "length" 1000 (Vec.length v);
  check Alcotest.int "fold" (999 * 1000 / 2) (Vec.fold ( + ) 0 v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 500) v);
  check (Alcotest.option Alcotest.int) "find_opt" (Some 77)
    (Vec.find_opt (fun x -> x = 77) v)

(* {2 Pool} *)

module Pool = Lockdoc_util.Pool

exception Boom of int

let test_pool_empty_and_singleton () =
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "empty input, %d jobs" jobs)
        []
        (Pool.map ~jobs (fun x -> x * 2) []);
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "singleton input, %d jobs" jobs)
        [ 14 ]
        (Pool.map ~jobs (fun x -> x * 2) [ 7 ]))
    [ 1; 4; 64 ]

let test_pool_more_jobs_than_items () =
  check (Alcotest.list Alcotest.int) "3 items on 64 domains" [ 0; 2; 4 ]
    (Pool.map ~jobs:64 (fun x -> x * 2) [ 0; 1; 2 ])

let test_pool_exception_payload () =
  (* The exception a worker raises must surface unwrapped, payload
     intact, re-raised with the captured backtrace. *)
  match Pool.map ~jobs:4 (fun x -> if x >= 90 then raise (Boom x) else x)
          (List.init 100 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom p -> check Alcotest.int "payload intact" 90 p

let test_pool_exception_lowest_index () =
  (* Several workers fail: the surfaced exception is the one the
     sequential map would have raised first, regardless of scheduling. *)
  for _ = 1 to 20 do
    match Pool.map ~jobs:8 (fun x -> if x mod 7 = 3 then raise (Boom x) else x)
            (List.init 200 Fun.id)
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom p -> check Alcotest.int "lowest failing index" 3 p
  done

let test_pool_variants () =
  let items = List.init 50 Fun.id in
  check (Alcotest.list Alcotest.int) "mapi"
    (List.mapi (fun i x -> i + (x * 3)) items)
    (Pool.mapi ~jobs:4 (fun i x -> i + (x * 3)) items);
  check (Alcotest.list Alcotest.int) "concat_map"
    (List.concat_map (fun x -> [ x; -x ]) items)
    (Pool.concat_map ~jobs:4 (fun x -> [ x; -x ]) items);
  check (Alcotest.array Alcotest.int) "map_array"
    (Array.init 50 (fun i -> i * i))
    (Pool.map_array ~jobs:4 (fun x -> x * x) (Array.of_list items));
  check (Alcotest.array Alcotest.int) "init"
    (Array.init 50 (fun i -> i + 1))
    (Pool.init ~jobs:4 50 (fun i -> i + 1))

let prop_pool_order_preserved =
  QCheck.Test.make ~name:"Pool.map preserves input order for any job count"
    ~count:100
    QCheck.(pair (list small_int) (int_range 1 9))
    (fun (items, jobs) ->
      Pool.map ~jobs (fun x -> x * x) items = List.map (fun x -> x * x) items)

let prop_pool_matches_sequential =
  QCheck.Test.make
    ~name:"Pool.map equals List.map for a stateless allocating worker"
    ~count:50
    QCheck.(pair (list (pair small_int small_int)) (int_range 2 8))
    (fun (items, jobs) ->
      let f (a, b) = List.init (a mod 5) (fun i -> i + b) in
      Pool.map ~jobs f items = List.map f items)

let test_pool_job_result () =
  let j = Pool.spawn (fun () -> List.init 100 Fun.id |> List.fold_left ( + ) 0) in
  (* Poll until done — a Some from poll must agree with await, and a
     job that has already completed awaits immediately. *)
  let rec wait n =
    match Pool.poll j with
    | Some r -> r
    | None ->
        if n = 0 then Alcotest.fail "job never completed";
        Unix.sleepf 0.005;
        wait (n - 1)
  in
  (match wait 2000 with
  | Ok v -> check Alcotest.int "poll sees the result" 4950 v
  | Error e -> Alcotest.failf "job failed: %s" (Printexc.to_string e));
  match Pool.await j with
  | Ok v -> check Alcotest.int "await agrees" 4950 v
  | Error e -> Alcotest.failf "await failed: %s" (Printexc.to_string e)

let test_pool_job_exception () =
  let j = Pool.spawn (fun () -> raise (Boom 17)) in
  (match Pool.await j with
  | Error (Boom p) -> check Alcotest.int "payload intact" 17 p
  | Error e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | Ok _ -> Alcotest.fail "expected Error");
  (* The domain is reaped: a second await is a caller bug. *)
  match Pool.await j with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double await must raise Invalid_argument"

let test_pool_jobs_concurrent () =
  (* Several detached jobs run at once and each returns its own answer
     regardless of completion order. *)
  let js = List.init 6 (fun i -> (i, Pool.spawn (fun () -> i * i))) in
  List.iter
    (fun (i, j) ->
      match Pool.await j with
      | Ok v -> check Alcotest.int (Printf.sprintf "job %d" i) (i * i) v
      | Error e -> Alcotest.failf "job %d failed: %s" i (Printexc.to_string e))
    js

(* {2 Fnv} *)

(* Canonical FNV-1a 32-bit vectors, plus the filesystem names whose
   hash feeds [s_magic] in the kernel simulator. Pinning the latter
   pins the trace bytes across OCaml versions — the whole reason
   Hashtbl.hash was evicted from vfs_super.ml. *)
let test_fnv_vectors () =
  check Alcotest.int "empty = offset basis" 0x811C9DC5 (Fnv.fnv1a32 "");
  check Alcotest.int "a" 0xE40C292C (Fnv.fnv1a32 "a");
  check Alcotest.int "foobar" 0xBF9CF968 (Fnv.fnv1a32 "foobar")

let test_fnv_fs_magics () =
  List.iter
    (fun (name, magic) ->
      check Alcotest.int ("s_magic " ^ name) magic
        (Fnv.fnv1a32 name land 0xffff))
    [
      ("ext4", 0x5BC0); ("tmpfs", 0xC0D1); ("proc", 0x2FE1);
      ("pipefs", 0x309A); ("bdev", 0xC85C); ("sysfs", 0x7E19);
      ("devtmpfs", 0x4766); ("sockfs", 0x49CE); ("debugfs", 0x5C0B);
      ("anon_inodefs", 0xF6DC);
    ]

let test_fnv_32bit_range () =
  List.iter
    (fun s ->
      let h = Fnv.fnv1a32 s in
      check Alcotest.bool ("in range: " ^ s) true (h >= 0 && h <= 0xFFFFFFFF))
    [ ""; "a"; "\xff\xff\xff\xff"; String.make 100 'z' ]

(* {2 Numarg} *)

let test_numarg_int () =
  check Alcotest.bool "plain" true (Numarg.int_arg "42" = Ok 42);
  check Alcotest.bool "negative" true (Numarg.int_arg "-7" = Ok (-7));
  check Alcotest.bool "trimmed" true (Numarg.int_arg " 8 " = Ok 8);
  check Alcotest.bool "junk rejected" true
    (Result.is_error (Numarg.int_arg "x"));
  check Alcotest.bool "empty rejected" true
    (Result.is_error (Numarg.int_arg ""));
  check Alcotest.bool "trailing junk rejected" true
    (Result.is_error (Numarg.int_arg "12abc"))

let test_numarg_positive () =
  check Alcotest.bool "accepts 1" true (Numarg.positive "1" = Ok 1);
  (match Numarg.positive "0" with
  | Error msg ->
      check Alcotest.bool "one-line diagnostic" true
        (not (String.contains msg '\n'))
  | Ok _ -> Alcotest.fail "0 accepted");
  check Alcotest.bool "rejects negatives" true
    (Result.is_error (Numarg.positive "-3"))

let test_numarg_non_negative () =
  check Alcotest.bool "accepts 0" true (Numarg.non_negative "0" = Ok 0);
  check Alcotest.bool "rejects -1" true
    (Result.is_error (Numarg.non_negative "-1"))

let test_numarg_fraction () =
  check Alcotest.bool "0.9" true (Numarg.fraction "0.9" = Ok 0.9);
  check Alcotest.bool "bounds" true
    (Numarg.fraction "0" = Ok 0. && Numarg.fraction "1" = Ok 1.);
  check Alcotest.bool "rejects 1.5" true
    (Result.is_error (Numarg.fraction "1.5"));
  check Alcotest.bool "rejects -0.1" true
    (Result.is_error (Numarg.fraction "-0.1"));
  check Alcotest.bool "rejects junk" true
    (Result.is_error (Numarg.fraction "nan"))

(* {2 Tablefmt} *)

let test_table_render () =
  let t = Tablefmt.create ~header:[ "a"; "bb" ] in
  Tablefmt.add_row t [ "x"; "y" ];
  Tablefmt.add_row t [ "longer"; "z" ];
  let rendered = Tablefmt.render t in
  let lines = String.split_on_char '\n' rendered in
  check Alcotest.int "line count" 6 (List.length lines);
  (* All lines are the same width. *)
  let widths = List.map String.length lines in
  check Alcotest.bool "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_align () =
  let t = Tablefmt.create ~header:[ "n" ] in
  Tablefmt.set_align t [ Tablefmt.Right ];
  Tablefmt.add_row t [ "7" ];
  Tablefmt.add_row t [ "1234" ];
  let rendered = Tablefmt.render t in
  check Alcotest.bool "right aligned" true (contains rendered "|    7 |")

let test_table_width_mismatch () =
  let t = Tablefmt.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Tablefmt.add_row: width mismatch")
    (fun () -> Tablefmt.add_row t [ "only one" ])

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          qtest prop_int_bounds;
          qtest prop_int_in_bounds;
          qtest prop_float_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "percentage" `Quick test_percentage;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "counter" `Quick test_counter;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "growth" `Quick test_vec_growth;
        ] );
      ( "pool",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_and_singleton;
          Alcotest.test_case "jobs > items" `Quick test_pool_more_jobs_than_items;
          Alcotest.test_case "exception payload survives" `Quick
            test_pool_exception_payload;
          Alcotest.test_case "lowest failing index wins" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "mapi/concat_map/map_array/init" `Quick
            test_pool_variants;
          qtest prop_pool_order_preserved;
          qtest prop_pool_matches_sequential;
          Alcotest.test_case "detached job result" `Quick test_pool_job_result;
          Alcotest.test_case "detached job exception, single await" `Quick
            test_pool_job_exception;
          Alcotest.test_case "detached jobs concurrent" `Quick
            test_pool_jobs_concurrent;
        ] );
      ( "fnv",
        [
          Alcotest.test_case "canonical vectors" `Quick test_fnv_vectors;
          Alcotest.test_case "fs magic goldens" `Quick test_fnv_fs_magics;
          Alcotest.test_case "32-bit range" `Quick test_fnv_32bit_range;
        ] );
      ( "numarg",
        [
          Alcotest.test_case "int" `Quick test_numarg_int;
          Alcotest.test_case "positive" `Quick test_numarg_positive;
          Alcotest.test_case "non-negative" `Quick test_numarg_non_negative;
          Alcotest.test_case "fraction" `Quick test_numarg_fraction;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "align" `Quick test_table_align;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        ] );
    ]
