(* Tests for the kernel simulator: scheduler semantics, lock-discipline
   enforcement, simulated memory, RCU grace periods, fault sites, source
   coverage and trace determinism. *)

module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Kernel = Lockdoc_ksim.Kernel
module Lock = Lockdoc_ksim.Lock
module Memory = Lockdoc_ksim.Memory
module Fault = Lockdoc_ksim.Fault
module Source = Lockdoc_ksim.Source
module Structs = Lockdoc_ksim.Structs
module Run = Lockdoc_ksim.Run
module Clock_example = Lockdoc_ksim.Clock_example

let check = Alcotest.check

let tiny =
  Lockdoc_trace.Layout.make ~name:"tiny"
    [ ("t_a", 8, Lockdoc_trace.Layout.Data);
      ("t_lock", 4, Lockdoc_trace.Layout.Lock) ]

let run_tasks ?config tasks =
  Kernel.run ?config ~layouts:[ tiny ] (fun () ->
      List.iter (fun (name, body) -> Kernel.spawn name body) tasks)

let quiet_config =
  { Kernel.default_config with Kernel.hardirq_rate = 0.; softirq_rate = 0. }

(* {2 Scheduler} *)

let test_determinism () =
  let t1 = Run.quick ~seed:3 () and t2 = Run.quick ~seed:3 () in
  check Alcotest.int "same event count" (Array.length t1.Trace.events)
    (Array.length t2.Trace.events);
  check Alcotest.bool "bitwise identical traces" true
    (Trace.to_lines t1 = Trace.to_lines t2)

let test_seed_changes_schedule () =
  let t1 = Run.quick ~seed:3 () and t2 = Run.quick ~seed:4 () in
  check Alcotest.bool "different seeds differ" true
    (Trace.to_lines t1 <> Trace.to_lines t2)

let test_deadlock_detection () =
  (* AB-BA deadlock depends on interleaving; retry a few seeds until the
     scheduler actually interleaves the two acquisition phases. *)
  let rec hunt seed =
    if seed > 40 then Alcotest.fail "never produced the AB-BA deadlock"
    else
      match
        ignore
          (run_tasks
             ~config:{ quiet_config with Kernel.seed }
             [
               ( "spawner",
                 fun () ->
                   let m1 = Lock.static ~kind:Event.Mutex "dlh_m1" in
                   let m2 = Lock.static ~kind:Event.Mutex "dlh_m2" in
                   Kernel.spawn "a" (fun () ->
                       Lock.mutex_lock m1;
                       Kernel.preempt_point ();
                       Lock.mutex_lock m2;
                       Lock.mutex_unlock m2;
                       Lock.mutex_unlock m1);
                   Kernel.spawn "b" (fun () ->
                       Lock.mutex_lock m2;
                       Kernel.preempt_point ();
                       Lock.mutex_lock m1;
                       Lock.mutex_unlock m1;
                       Lock.mutex_unlock m2) );
             ])
      with
      | () -> hunt (seed + 1)
      | exception Kernel.Deadlock _ -> ()
  in
  hunt 0

let test_blocking_hands_over () =
  (* A mutex held by one task forces the other to wait and then proceed. *)
  let order = ref [] in
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "spawner",
           fun () ->
             let m = Lock.static ~kind:Event.Mutex "handover" in
             Kernel.spawn "first" (fun () ->
                 Lock.mutex_lock m;
                 order := `First_locked :: !order;
                 Kernel.preempt_point ();
                 Kernel.preempt_point ();
                 Lock.mutex_unlock m);
             Kernel.spawn "second" (fun () ->
                 Lock.mutex_lock m;
                 order := `Second_locked :: !order;
                 Lock.mutex_unlock m) );
       ]);
  check Alcotest.int "both ran" 2 (List.length !order)

(* {2 Lock discipline enforcement} *)

let expect_lock_error name body =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( name,
           fun () ->
             (try
                body ();
                Alcotest.fail (name ^ ": expected Lock_error")
              with Lock.Lock_error _ -> ()) );
       ])

let test_recursive_spinlock_rejected () =
  expect_lock_error "recursive spin" (fun () ->
      let l = Lock.static ~kind:Event.Spinlock "rec_spin" in
      Lock.spin_lock l;
      Lock.spin_lock l)

let test_unlock_not_held_rejected () =
  expect_lock_error "stray unlock" (fun () ->
      let l = Lock.static ~kind:Event.Spinlock "stray" in
      Lock.spin_unlock l)

let test_sleep_in_atomic () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "sleeper",
           fun () ->
             let s = Lock.static ~kind:Event.Spinlock "atomic_s" in
             let m = Lock.static ~kind:Event.Mutex "atomic_m" in
             Lock.spin_lock s;
             (* Force the mutex to appear contended so mutex_lock blocks. *)
             (try
                Kernel.wait_until "never" (fun () -> false);
                Alcotest.fail "expected Sleep_in_atomic"
              with Kernel.Sleep_in_atomic _ -> ());
             ignore m;
             Lock.spin_unlock s );
       ])

let test_rwsem_semantics () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "rw",
           fun () ->
             let l = Lock.static ~kind:Event.Rwsem "rw1" in
             Lock.down_read l;
             Lock.down_read l (* multiple readers fine *);
             Lock.up_read l;
             Lock.up_read l;
             Lock.down_write l;
             Lock.downgrade_write l;
             Lock.up_read l );
       ])

let test_seqlock_retry_on_writer () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "seq",
           fun () ->
             let l = Lock.static ~kind:Event.Seqlock "seq1" in
             let runs = ref 0 in
             let v =
               Lock.read_seq_section l (fun () ->
                   incr runs;
                   (* A writer slips in during the first pass only. *)
                   if !runs = 1 then begin
                     Lock.write_seqlock l;
                     Lock.write_sequnlock l
                   end;
                   42)
             in
             check Alcotest.int "value" 42 v;
             check Alcotest.int "one retry" 2 !runs );
       ])

let test_call_rcu_deferred () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "rcu",
           fun () ->
             let freed = ref false in
             Lock.rcu_read_lock ();
             Lock.call_rcu (fun () -> freed := true);
             check Alcotest.bool "deferred while reading" false !freed;
             Lock.rcu_read_unlock ();
             check Alcotest.bool "ran at grace period" true !freed;
             (* Without readers the callback runs immediately. *)
             let now = ref false in
             Lock.call_rcu (fun () -> now := true);
             check Alcotest.bool "immediate without readers" true !now );
       ])

(* {2 Memory} *)

let test_memory_read_write () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "mem",
           fun () ->
             let inst = Memory.alloc tiny in
             Memory.write inst "t_a" 7;
             check Alcotest.int "read back" 7 (Memory.read inst "t_a");
             Memory.modify inst "t_a" (fun v -> v * 2);
             check Alcotest.int "modify" 14 (Memory.read inst "t_a");
             Memory.free inst );
       ])

let test_memory_use_after_free () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "uaf",
           fun () ->
             let inst = Memory.alloc tiny in
             Memory.free inst;
             (try
                ignore (Memory.read inst "t_a");
                Alcotest.fail "expected use-after-free failure"
              with Failure _ -> ()) );
       ])

let test_memory_lock_member_rejected () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "lockmember",
           fun () ->
             let inst = Memory.alloc tiny in
             (try
                ignore (Memory.read inst "t_lock");
                Alcotest.fail "expected Invalid_argument"
              with Invalid_argument _ -> ());
             Memory.free inst );
       ])

let test_memory_address_reuse () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "reuse",
           fun () ->
             let a = Memory.alloc tiny in
             let addr = a.Memory.base in
             Memory.free a;
             let b = Memory.alloc tiny in
             check Alcotest.int "freed address reused" addr b.Memory.base;
             Memory.free b );
       ])

(* {2 Fault sites} *)

let test_fault_period () =
  Fault.set_enabled true;
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "fault",
           fun () ->
             Fault.with_period "test_site_period" 3 @@ fun () ->
             let site = Fault.site "test_site_period" in
             let fires = List.init 9 (fun _ -> Fault.fire site) in
             check (Alcotest.list Alcotest.bool) "every third visit"
               [ false; false; true; false; false; true; false; false; true ]
               fires );
       ])

let test_fault_disabled () =
  ignore
    (run_tasks ~config:quiet_config
       [
         ( "fault-off",
           fun () ->
             Fault.with_period "test_site_disabled" 1 @@ fun () ->
             let site = Fault.site "test_site_disabled" in
             Fault.set_enabled false;
             Fun.protect
               ~finally:(fun () -> Fault.set_enabled true)
               (fun () ->
                 check Alcotest.bool "never fires when disabled" false
                   (Fault.fire site)) );
       ])

let test_fault_with_period_restores () =
  let site = Fault.site ~period:7 "test_site_scoped" in
  Fault.with_period "test_site_scoped" 2 (fun () ->
      check Alcotest.int "period overridden" 2
        (List.assoc "test_site_scoped" (Fault.sites ())));
  check Alcotest.int "period restored" 7
    (List.assoc "test_site_scoped" (Fault.sites ()));
  (try
     Fault.with_period "test_site_scoped" 4 (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "period restored on exception" 7
    (List.assoc "test_site_scoped" (Fault.sites ()));
  ignore site

let test_fault_reset () =
  let site = Fault.site ~period:1 "test_site_reset" in
  Fault.set_enabled true;
  check Alcotest.bool "fires before reset" true (Fault.fire site);
  Fault.set_period "test_site_reset" 9;
  Fault.set_enabled false;
  Fault.reset ();
  check Alcotest.int "declared period restored" 1
    (List.assoc "test_site_reset" (Fault.sites ()));
  check Alcotest.int "fired count zeroed" 0
    (List.assoc "test_site_reset" (Fault.fired_counts ()));
  check Alcotest.bool "re-enabled, fires again" true (Fault.fire site);
  Fault.reset ()

(* {2 Source coverage} *)

let test_coverage_accounting () =
  let _, cov =
    Kernel.run ~config:quiet_config ~layouts:[ tiny ] (fun () ->
        Kernel.spawn "covered" (fun () ->
            Kernel.fn_scope ~file:"covdir/one.c" ~span:20 "cov_hot" (fun () -> ())))
  in
  ignore (Source.declare ~file:"covdir/one.c" ~span:30 "cov_cold");
  let reports = Source.report cov ~dirs:[ "covdir" ] in
  let r = List.hd reports in
  check Alcotest.int "two functions declared" 2 r.Source.functions_total;
  check Alcotest.int "one executed" 1 r.Source.functions_covered;
  check Alcotest.int "total lines" 50 r.Source.lines_total;
  check Alcotest.bool "partial line coverage" true
    (r.Source.lines_covered > 0 && r.Source.lines_covered < 50)

(* Re-declaration must be idempotent for an identical signature and loud
   for a conflicting one: silently keeping the first record would skew
   every coverage denominator derived from the registry. *)
let test_declare_mismatch () =
  let fn = Source.declare ~file:"redecl/a.c" ~span:10 "redecl_probe" in
  let again = Source.declare ~file:"redecl/a.c" ~span:10 "redecl_probe" in
  check Alcotest.bool "same record back" true (fn = again);
  let raises f =
    match f () with
    | (_ : Source.fn) -> false
    | exception Invalid_argument _ -> true
  in
  check Alcotest.bool "span mismatch raises" true
    (raises (fun () -> Source.declare ~file:"redecl/a.c" ~span:11 "redecl_probe"));
  check Alcotest.bool "file mismatch raises" true
    (raises (fun () -> Source.declare ~file:"redecl/b.c" ~span:10 "redecl_probe"));
  check Alcotest.bool "original record survives" true
    (Source.find "redecl_probe" = fn)

(* Report edge cases: directory matching is non-recursive (as in the
   paper's Tab. 3), declared-but-never-executed functions count against
   the denominators, and zero-span functions contribute no lines. *)
let test_report_edge_cases () =
  ignore (Source.declare ~file:"edgedir/a.c" ~span:10 "srcedge_top");
  ignore (Source.declare ~file:"edgedir/sub/b.c" ~span:10 "srcedge_nested");
  let zero = Source.declare ~file:"edgezero/z.c" ~span:0 "srcedge_zero" in
  let cov = Source.coverage () in
  (* Nested-dir exclusion: "edgedir" must not swallow "edgedir/sub". *)
  let top = List.hd (Source.report cov ~dirs:[ "edgedir" ]) in
  check Alcotest.int "only direct files counted" 1 top.Source.functions_total;
  check Alcotest.int "nested lines excluded" 10 top.Source.lines_total;
  let nested = List.hd (Source.report cov ~dirs:[ "edgedir/sub" ]) in
  check Alcotest.int "nested dir counted on its own" 1
    nested.Source.functions_total;
  (* Declared but never executed: full denominator, zero numerator. *)
  check Alcotest.int "no functions covered" 0 top.Source.functions_covered;
  check Alcotest.int "no lines covered" 0 top.Source.lines_covered;
  (* Zero-span functions count as functions but contribute no lines,
     entered or not. *)
  Source.mark_enter cov zero;
  let z = List.hd (Source.report cov ~dirs:[ "edgezero" ]) in
  check Alcotest.int "zero-span declared" 1 z.Source.functions_total;
  check Alcotest.int "zero-span entered" 1 z.Source.functions_covered;
  check Alcotest.int "zero-span has no lines" 0 z.Source.lines_total;
  check Alcotest.int "zero-span covers no lines" 0 z.Source.lines_covered

(* {2 Clock example invariants} *)

let test_clock_event_shape () =
  let trace = Clock_example.run () in
  let count pred = Trace.count trace pred in
  let sec_ptr = Lock.ptr Clock_example.sec_lock in
  let min_ptr = Lock.ptr Clock_example.min_lock in
  check Alcotest.int "1001 sec_lock acquisitions"
    1001
    (count (function
      | Event.Lock_acquire { lock_ptr; _ } -> lock_ptr = sec_ptr
      | _ -> false));
  check Alcotest.int "16 min_lock acquisitions (1000/60 carries)" 16
    (count (function
      | Event.Lock_acquire { lock_ptr; _ } -> lock_ptr = min_ptr
      | _ -> false));
  check Alcotest.int "one allocation" 1
    (count (function Event.Alloc _ -> true | _ -> false))

(* {2 IRQ injection} *)

let test_irq_injection_pseudo_locks () =
  (* With aggressive injection rates the trace must contain hardirq and
     softirq pseudo-lock sections, and (Inherit mode) handler accesses
     must see the interrupted task's locks. *)
  let config =
    { Kernel.default_config with
      Kernel.seed = 21; hardirq_rate = 0.2; softirq_rate = 0.2 }
  in
  let run_cfg = { Run.default_config with Run.kernel = config; Run.scale = 1 } in
  let trace, _ = Run.benchmark_mix ~config:run_cfg () in
  let pseudo_acquires =
    Trace.count trace (function
      | Event.Lock_acquire { kind = Event.Pseudo; _ } -> true
      | _ -> false)
  in
  check Alcotest.bool "pseudo-lock sections present" true (pseudo_acquires > 10);
  let irq_switches =
    Trace.count trace (function
      | Event.Ctx_switch { kind = Event.Hardirq; _ }
      | Event.Ctx_switch { kind = Event.Softirq; _ } -> true
      | _ -> false)
  in
  check Alcotest.bool "irq contexts appear" true (irq_switches > 10);
  (* Import in both modes and compare how handlers see task locks. *)
  let store_inh, _ =
    Lockdoc_db.Import.run ~irq_mode:Lockdoc_db.Import.Inherit trace
  in
  let store_sep, _ =
    Lockdoc_db.Import.run ~irq_mode:Lockdoc_db.Import.Separate trace
  in
  let module Store = Lockdoc_db.Store in
  let module Schema = Lockdoc_db.Schema in
  let handler_lock_depth store =
    (* max held-list length over transactions that include a pseudo lock *)
    let deepest = ref 0 in
    for i = 0 to Store.n_txns store - 1 do
      let tx = Store.txn store i in
      let has_pseudo =
        List.exists
          (fun h ->
            (Store.lock store h.Schema.h_lock).Schema.lk_kind = Event.Pseudo)
          tx.Schema.tx_locks
      in
      if has_pseudo then
        deepest := max !deepest (List.length tx.Schema.tx_locks)
    done;
    !deepest
  in
  check Alcotest.bool "inherit sees at least as deep handler lock sets" true
    (handler_lock_depth store_inh >= handler_lock_depth store_sep)

(* {2 Benchmark-mix smoke} *)

let test_benchmark_mix_smoke () =
  let trace = Run.quick ~seed:11 () in
  check Alcotest.bool "produces a substantial trace" true
    (Array.length trace.Trace.events > 10_000);
  (* Balanced lock events overall. *)
  let acquires =
    Trace.count trace (function Event.Lock_acquire _ -> true | _ -> false)
  in
  let releases =
    Trace.count trace (function Event.Lock_release _ -> true | _ -> false)
  in
  check Alcotest.int "acquire/release balance" acquires releases;
  (* Allocation/deallocation bookkeeping never goes negative and frees do
     not exceed allocations. *)
  let allocs = Trace.count trace (function Event.Alloc _ -> true | _ -> false) in
  let frees = Trace.count trace (function Event.Free _ -> true | _ -> false) in
  check Alcotest.bool "frees <= allocs" true (frees <= allocs)

let () =
  Alcotest.run "ksim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "mutex handover" `Quick test_blocking_hands_over;
        ] );
      ( "locks",
        [
          Alcotest.test_case "recursive spinlock" `Quick test_recursive_spinlock_rejected;
          Alcotest.test_case "stray unlock" `Quick test_unlock_not_held_rejected;
          Alcotest.test_case "sleep in atomic" `Quick test_sleep_in_atomic;
          Alcotest.test_case "rwsem semantics" `Quick test_rwsem_semantics;
          Alcotest.test_case "seqlock retry" `Quick test_seqlock_retry_on_writer;
          Alcotest.test_case "call_rcu grace period" `Quick test_call_rcu_deferred;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_read_write;
          Alcotest.test_case "use after free" `Quick test_memory_use_after_free;
          Alcotest.test_case "lock member" `Quick test_memory_lock_member_rejected;
          Alcotest.test_case "address reuse" `Quick test_memory_address_reuse;
        ] );
      ( "faults",
        [
          Alcotest.test_case "period" `Quick test_fault_period;
          Alcotest.test_case "disabled" `Quick test_fault_disabled;
          Alcotest.test_case "with_period restores" `Quick
            test_fault_with_period_restores;
          Alcotest.test_case "reset" `Quick test_fault_reset;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "accounting" `Quick test_coverage_accounting;
          Alcotest.test_case "re-declaration mismatch" `Quick
            test_declare_mismatch;
          Alcotest.test_case "report edge cases" `Quick test_report_edge_cases;
        ] );
      ( "clock example",
        [ Alcotest.test_case "event shape" `Quick test_clock_event_shape ] );
      ( "irq",
        [
          Alcotest.test_case "injection + pseudo locks" `Slow
            test_irq_injection_pseudo_locks;
        ] );
      ( "benchmark mix",
        [ Alcotest.test_case "smoke" `Slow test_benchmark_mix_smoke ] );
    ]
