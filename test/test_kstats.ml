(* Tests for the kernel-source statistics substrate behind Fig. 1: growth
   model anchors, the lexical scanner, and generator/scanner agreement. *)

module Model = Lockdoc_kstats.Model
module Gen = Lockdoc_kstats.Gen
module Scan = Lockdoc_kstats.Scan
module Figure1 = Lockdoc_kstats.Figure1

let check = Alcotest.check

(* {2 Model} *)

let test_model_growth_anchors () =
  let g = Figure1.growth (Figure1.rows ()) in
  (* The paper quotes mutex +81 %, spinlock +45 % (dip at the end),
     LoC +73 % over the window. *)
  check Alcotest.bool "mutex ~ +81%" true
    (g.Figure1.mutex_pct > 75. && g.Figure1.mutex_pct < 87.);
  check Alcotest.bool "spinlock ~ +45%" true
    (g.Figure1.spinlock_pct > 39. && g.Figure1.spinlock_pct < 52.);
  check Alcotest.bool "LoC ~ +73%" true
    (g.Figure1.loc_pct > 67. && g.Figure1.loc_pct < 80.)

let test_model_monotone_mutex () =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun ((a : Model.point), (b : Model.point)) ->
      check Alcotest.bool "mutex monotone" true
        (b.Model.mutex_inits >= a.Model.mutex_inits);
      check Alcotest.bool "loc monotone" true (b.Model.loc >= a.Model.loc))
    (pairs Model.series)

let test_model_spinlock_dip () =
  (* Spinlock usage dips slightly in the last releases (paper Fig. 1). *)
  let series = Model.series in
  let last = List.nth series (List.length series - 1) in
  let prev = List.nth series (List.length series - 2) in
  check Alcotest.bool "dip after v4.15" true
    (last.Model.spinlock_inits < prev.Model.spinlock_inits)

(* {2 Scanner} *)

let test_scan_patterns () =
  let src =
    "static DEFINE_SPINLOCK(a_lock);\n\
     int f(void)\n\
     {\n\
     \tspin_lock_init(&x->lock);\n\
     \tmutex_init(&x->m);\n\
     \trcu_read_lock();\n\
     \tcall_rcu(&x->rcu, cb);\n\
     \treturn 0;\n\
     }\n"
  in
  let c = Scan.scan_string src in
  check Alcotest.int "spinlocks" 2 c.Scan.spinlock_inits;
  check Alcotest.int "mutexes" 1 c.Scan.mutex_inits;
  check Alcotest.int "rcu" 2 c.Scan.rcu_usages;
  check Alcotest.int "code lines" 9 c.Scan.code_lines

let test_scan_skips_comments () =
  let src = "/* spin_lock_init(&x); */\n// mutex_init(&y);\n * call_rcu(x);\n" in
  let c = Scan.scan_string src in
  check Alcotest.int "no patterns in comments" 0
    (c.Scan.spinlock_inits + c.Scan.mutex_inits + c.Scan.rcu_usages);
  check Alcotest.int "no code lines" 0 c.Scan.code_lines

let test_scan_raw_variant () =
  let c = Scan.scan_string "\traw_spin_lock_init(&rq->queue_lock);\n" in
  check Alcotest.int "raw variant counts once" 1 c.Scan.spinlock_inits

let test_scan_add () =
  let a = Scan.scan_string "\tmutex_init(&m);\n" in
  let b = Scan.scan_string "\tspin_lock_init(&s);\n" in
  let s = Scan.add a b in
  check Alcotest.int "sum mutex" 1 s.Scan.mutex_inits;
  check Alcotest.int "sum spin" 1 s.Scan.spinlock_inits;
  check Alcotest.int "sum lines" 2 s.Scan.code_lines

(* {2 Generator/scanner agreement} *)

let test_gen_scan_agreement () =
  List.iter
    (fun (point : Model.point) ->
      let counts = Scan.scan_files (Gen.generate point) in
      check Alcotest.int
        (Model.version_to_string point.Model.version ^ " spinlocks")
        point.Model.spinlock_inits counts.Scan.spinlock_inits;
      check Alcotest.int "mutexes" point.Model.mutex_inits counts.Scan.mutex_inits;
      check Alcotest.int "rcu" point.Model.rcu_usages counts.Scan.rcu_usages;
      (* Line counts land within 2 % of the model target. *)
      let err =
        abs (counts.Scan.code_lines - point.Model.loc) * 100 / point.Model.loc
      in
      check Alcotest.bool "LoC within 2%" true (err <= 2))
    [ Model.point { Model.major = 3; minor = 0 };
      Model.point { Model.major = 4; minor = 10 } ]

let test_gen_deterministic () =
  let p = Model.point { Model.major = 4; minor = 0 } in
  let a = Gen.generate p and b = Gen.generate p in
  check Alcotest.int "same file count" (List.length a) (List.length b);
  List.iter2
    (fun (fa : Gen.file) (fb : Gen.file) ->
      check Alcotest.string "same path" fa.Gen.path fb.Gen.path;
      check Alcotest.bool "same content" true (fa.Gen.content = fb.Gen.content))
    a b

let test_gen_spreads_files () =
  let p = Model.point { Model.major = 4; minor = 18 } in
  let files = Gen.generate p in
  check Alcotest.bool "a realistic number of files" true
    (List.length files > 10)

let () =
  Alcotest.run "kstats"
    [
      ( "model",
        [
          Alcotest.test_case "growth anchors" `Quick test_model_growth_anchors;
          Alcotest.test_case "monotone series" `Quick test_model_monotone_mutex;
          Alcotest.test_case "spinlock dip" `Quick test_model_spinlock_dip;
        ] );
      ( "scanner",
        [
          Alcotest.test_case "patterns" `Quick test_scan_patterns;
          Alcotest.test_case "comments skipped" `Quick test_scan_skips_comments;
          Alcotest.test_case "raw variant" `Quick test_scan_raw_variant;
          Alcotest.test_case "add" `Quick test_scan_add;
        ] );
      ( "generator",
        [
          Alcotest.test_case "agreement with model" `Quick test_gen_scan_agreement;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "file spread" `Quick test_gen_spreads_files;
        ] );
    ]
