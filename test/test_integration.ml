(* End-to-end integration tests: run the benchmark mix, import it, derive
   rules, and check the mined rules against the simulator's intended
   discipline (ground truth the paper did not have). Also exercises every
   experiment renderer. *)

module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Kernel = Lockdoc_ksim.Kernel
module Run = Lockdoc_ksim.Run
module Fault = Lockdoc_ksim.Fault
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Derivator = Lockdoc_core.Derivator
module Checker = Lockdoc_core.Checker
module Violation = Lockdoc_core.Violation
module Context = Lockdoc_experiments.Context
module Registry = Lockdoc_experiments.Registry

let check = Alcotest.check

(* One shared pipeline for the whole suite (scale 4 keeps it fast). *)
let ctx = lazy (Context.create ~scale:4 ~seed:42 ())

let dataset () = (Lazy.force ctx).Context.dataset

let winner_of key member kind =
  let mined =
    List.find_opt
      (fun m ->
        m.Derivator.m_type = key
        && m.Derivator.m_member = member
        && m.Derivator.m_kind = kind)
      (Lazy.force ctx).Context.mined
  in
  Option.map (fun m -> Rule.to_string m.Derivator.m_winner) mined

(* {2 Import sanity} *)

let test_import_clean () =
  let stats = (Lazy.force ctx).Context.import_stats in
  check Alcotest.int "no unresolved accesses" 0 stats.Import.unresolved;
  check Alcotest.int "no unbalanced releases" 0 stats.Import.unbalanced_releases;
  check Alcotest.bool "substantial volume" true (stats.Import.accesses_kept > 10_000)

let test_all_type_keys_present () =
  let keys = Dataset.type_keys (dataset ()) in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " present") true (List.mem expected keys))
    [
      "inode:ext4"; "inode:tmpfs"; "inode:proc"; "inode:pipefs"; "dentry";
      "journal_t"; "transaction_t"; "journal_head"; "buffer_head";
      "super_block"; "block_device"; "backing_dev_info"; "cdev";
      "pipe_inode_info";
    ]

(* {2 Mined rules vs simulator ground truth} *)

let check_winner key member kind expected =
  match winner_of key member kind with
  | Some got ->
      check Alcotest.string
        (Printf.sprintf "%s.%s %s" key member (Rule.access_to_string kind))
        expected got
  | None -> Alcotest.fail (Printf.sprintf "%s.%s never observed" key member)

let test_ground_truth_es_rules () =
  check_winner "inode:ext4" "i_bytes" Rule.W "ES(i_lock)";
  check_winner "inode:ext4" "i_state" Rule.W "ES(i_lock)";
  check_winner "inode:ext4" "i_uid" Rule.W "ES(i_rwsem)";
  check_winner "inode:ext4" "i_mode" Rule.W "ES(i_rwsem)"

let test_ground_truth_eo_rules () =
  (* Cross-structure rules the paper highlights in Fig. 8. *)
  check_winner "inode:ext4" "dirtied_when" Rule.W
    "EO(wb.list_lock in backing_dev_info)";
  check_winner "inode:ext4" "i_data.writeback_index" Rule.W
    "EO(s_umount in super_block)";
  (* journal_head linkage under the journal's list lock. *)
  check_winner "journal_head" "b_tnext" Rule.W "EO(j_list_lock in journal_t)";
  (* journal_head payload under the owning buffer_head's state lock. *)
  check_winner "journal_head" "b_transaction" Rule.W
    "EO(b_state_lock in buffer_head)"

let test_ground_truth_global_rules () =
  check_winner "journal_t" "j_running_transaction" Rule.W "ES(j_state_lock)";
  check_winner "cdev" "dev" Rule.W "cdev_lock";
  check_winner "pipe_inode_info" "nrbufs" Rule.W "ES(mutex)"

let test_lockless_members () =
  (* Members that really need no locks end up with the no-lock rule. *)
  check_winner "inode:ext4" "i_atime" Rule.W "nolock";
  check_winner "inode:proc" "i_private" Rule.W "nolock"

let test_subclass_divergence () =
  (* proc reads i_size lock-free while disk filesystems use the seq
     section; the derivation keys must be able to diverge. *)
  let keys = Dataset.type_keys (dataset ()) in
  check Alcotest.bool "proc separate from ext4" true
    (List.mem "inode:proc" keys && List.mem "inode:ext4" keys)

(* {2 Documented-rule checking} *)

let test_checker_finds_doc_bugs () =
  let d = dataset () in
  let size_w =
    Checker.check_rule d ~ty:"inode" ~member:"i_size" ~kind:Rule.W
      (Rule.parse "ES(i_lock)")
  in
  check Alcotest.string "documented i_size rule is wrong" "incorrect"
    (Checker.verdict_to_string size_w.Checker.c_verdict);
  let bytes_w =
    Checker.check_rule d ~ty:"inode" ~member:"i_bytes" ~kind:Rule.W
      (Rule.parse "ES(i_lock)")
  in
  check Alcotest.string "documented i_bytes rule holds" "correct"
    (Checker.verdict_to_string bytes_w.Checker.c_verdict)

(* {2 Violations} *)

let test_violations_found () =
  let c = Lazy.force ctx in
  let violations = Violation.find c.Context.dataset c.Context.mined in
  check Alcotest.bool "violations exist" true (List.length violations > 0);
  (* The __remove_inode_hash neighbour writes surface as i_hash
     violations on some inode subclass. *)
  check Alcotest.bool "i_hash violation found" true
    (List.exists (fun v -> v.Violation.v_member = "i_hash") violations);
  (* The deliberately clean subsystem stays clean. *)
  let cdev = Violation.summarise violations "cdev" in
  check Alcotest.int "cdev has no violations" 0 cdev.Violation.vs_events

let test_confirmed_bug_found () =
  (* The inode_set_flags path (paper Fig. 3, confirmed by kernel
     developers): with fault injection on, i_flags write violations exist
     and point at inode_set_flags. *)
  let c = Lazy.force ctx in
  let violations = Violation.find c.Context.dataset c.Context.mined in
  let flags =
    List.filter
      (fun v -> v.Violation.v_member = "i_flags" && v.Violation.v_kind = Rule.W)
      violations
  in
  check Alcotest.bool "i_flags violations found" true (List.length flags > 0);
  check Alcotest.bool "blamed on inode_set_flags" true
    (List.exists
       (fun v -> List.mem "inode_set_flags" v.Violation.v_stack)
       flags)

let test_faults_off_clean_blocks () =
  (* Without fault injection the ext4 i_blocks discipline is perfect. *)
  let config =
    { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
      Run.scale = 2; Run.faults = false }
  in
  let trace, _ = Run.benchmark_mix ~config () in
  let store, _ = Import.run trace in
  let d = Dataset.of_store store in
  let mined = Derivator.derive_member d "inode:ext4" ~member:"i_blocks" ~kind:Rule.W in
  check Alcotest.string "i_blocks winner" "ES(i_lock)"
    (Rule.to_string mined.Derivator.m_winner);
  check (Alcotest.float 1e-9) "perfect support" 1.0
    mined.Derivator.m_support.Lockdoc_core.Hypothesis.sr

(* {2 Fig. 7 property} *)

let test_nolock_fraction_monotone () =
  (* Raising tac can only move winners towards "no lock". *)
  let c = Lazy.force ctx in
  let mined =
    List.filter (fun m -> m.Derivator.m_type = "dentry") c.Context.mined
  in
  let frac tac =
    let nolock =
      List.filter
        (fun m ->
          let w = Lockdoc_core.Selection.select ~tac m.Derivator.m_hypotheses in
          Rule.equal w.Lockdoc_core.Hypothesis.rule Rule.no_lock)
        mined
    in
    List.length nolock
  in
  let fractions = List.map frac [ 0.7; 0.8; 0.9; 1.0 ] in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check Alcotest.bool "non-decreasing in tac" true (monotone fractions)

(* {2 Experiment renderers} *)

let test_all_experiments_render () =
  let lazy_ctx = ctx in
  List.iter
    (fun (e : Registry.experiment) ->
      let out = e.Registry.render lazy_ctx in
      check Alcotest.bool (e.Registry.id ^ " non-empty") true
        (String.length out > 50))
    Registry.all

let test_registry_complete () =
  check
    (Alcotest.list Alcotest.string)
    "every paper artifact is registered"
    [ "fig1"; "tab1"; "tab2"; "tab3"; "sec72"; "tab4"; "tab5"; "tab6";
      "fig7"; "fig8"; "tab7"; "tab8"; "sanitize"; "lint" ]
    Registry.ids

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "import is clean" `Quick test_import_clean;
          Alcotest.test_case "type keys" `Quick test_all_type_keys_present;
        ] );
      ( "ground truth",
        [
          Alcotest.test_case "ES rules" `Quick test_ground_truth_es_rules;
          Alcotest.test_case "EO rules" `Quick test_ground_truth_eo_rules;
          Alcotest.test_case "global/es rules" `Quick test_ground_truth_global_rules;
          Alcotest.test_case "lock-free members" `Quick test_lockless_members;
          Alcotest.test_case "subclasses diverge" `Quick test_subclass_divergence;
        ] );
      ( "checker",
        [ Alcotest.test_case "documentation bugs" `Quick test_checker_finds_doc_bugs ] );
      ( "violations",
        [
          Alcotest.test_case "found" `Quick test_violations_found;
          Alcotest.test_case "confirmed i_flags bug" `Quick test_confirmed_bug_found;
          Alcotest.test_case "faults off" `Slow test_faults_off_clean_blocks;
        ] );
      ( "fig7", [ Alcotest.test_case "monotone" `Quick test_nolock_fraction_monotone ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "all render" `Slow test_all_experiments_render;
        ] );
    ]
