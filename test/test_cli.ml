(* Black-box tests of the installed `lockdoc` binary.

   These drive the real executable (dune puts it next to the test
   runner's parent directory) so they cover what unit tests cannot: the
   process exit code, the metrics-on-exit contract, and cmdliner's
   checked-flag rejections.

   The anchor regression: `--metrics` snapshots used to be written by a
   [Fun.protect] finaliser, which [Stdlib.exit] skips — so exactly the
   runs whose diagnostics you most want (fsck finding fatal anomalies,
   exit 1) lost their metrics. The snapshot now rides an [at_exit]
   handler; the test below fails if anyone moves it back. *)

module Trace = Lockdoc_trace.Trace
module Run = Lockdoc_ksim.Run

let check = Alcotest.check
let exe = Filename.concat Filename.parent_dir_name "bin/lockdoc.exe"

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Run the binary; returns (exit code, stdout, stderr). *)
let run args =
  let out = Filename.temp_file "cli_out" ".txt" in
  let err = Filename.temp_file "cli_err" ".txt" in
  let code = Sys.command (Filename.quote_command exe ~stdout:out ~stderr:err args) in
  let o = read_file out and e = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, o, e)

(* A clean workload trace, and a copy with two fatal reader anomalies
   (unknown record tags) appended. *)
let with_fixtures f =
  let dir = temp_dir "cli_fix" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let clean = Filename.concat dir "clean.trace" in
      Trace.save clean (Run.workload_trace "pipe");
      let bad = Filename.concat dir "bad.trace" in
      let oc = open_out_bin bad in
      output_string oc (read_file clean);
      output_string oc "Z\tbogus record one\nZ\tbogus record two\n";
      close_out oc;
      f ~dir ~clean ~bad)

let test_fsck_clean () =
  with_fixtures (fun ~dir:_ ~clean ~bad:_ ->
      let code, out, _ = run [ "fsck"; clean ] in
      check Alcotest.int "exit 0" 0 code;
      check Alcotest.bool "reports clean" true
        (contains out "clean: no anomalies"))

let test_metrics_written_on_failing_exit () =
  with_fixtures (fun ~dir ~clean:_ ~bad ->
      let m = Filename.concat dir "m.json" in
      let code, _, _ = run [ "fsck"; "--metrics"; m; bad ] in
      check Alcotest.int "fatal anomalies exit 1" 1 code;
      check Alcotest.bool "metrics snapshot exists despite exit 1" true
        (Sys.file_exists m);
      let snap = read_file m in
      check Alcotest.bool "snapshot is a metrics document" true
        (contains snap "\"counters\""))

let test_fsck_json () =
  with_fixtures (fun ~dir:_ ~clean ~bad ->
      let code, out, _ = run [ "fsck"; "--json"; bad ] in
      check Alcotest.int "exit 1" 1 code;
      check Alcotest.bool "fatal flagged" true
        (contains out "\"fatal\":\"true\"");
      check Alcotest.bool "exit code surfaced" true
        (contains out "\"exit_code\":1");
      check Alcotest.bool "kinds summarised" true
        (contains out "\"unknown-tag\":2");
      let code, out, _ = run [ "fsck"; "--json"; clean ] in
      check Alcotest.int "clean exit 0" 0 code;
      check Alcotest.bool "clean not fatal" true
        (contains out "\"fatal\":\"false\"");
      check Alcotest.bool "clean exit code surfaced" true
        (contains out "\"exit_code\":0"))

let test_fsck_limit () =
  with_fixtures (fun ~dir:_ ~clean:_ ~bad ->
      let _, full, _ = run [ "fsck"; bad ] in
      check Alcotest.bool "default limit shows both" true
        (not (contains full "more"));
      let _, limited, _ = run [ "fsck"; "--limit"; "1"; bad ] in
      check Alcotest.bool "limit 1 elides the second" true
        (contains limited "... 1 more");
      let _, summary, _ = run [ "fsck"; "--limit"; "0"; bad ] in
      check Alcotest.bool "limit 0 keeps the summary" true
        (contains summary "unknown-tag");
      check Alcotest.bool "limit 0 is shorter" true
        (String.length summary < String.length limited))

let test_checked_flags_reject () =
  List.iter
    (fun args ->
      let code, _, err = run args in
      check Alcotest.bool
        (Printf.sprintf "%s rejected" (String.concat " " args))
        true
        (code <> 0 && String.length err > 0))
    [
      [ "fsck"; "--limit"; "-1"; "nonexistent.trace" ];
      [ "fsck"; "--limit"; "abc"; "nonexistent.trace" ];
      [ "serve"; "--session-timeout"; "0" ];
      [ "serve"; "--session-timeout"; "nan" ];
      [ "serve"; "--max-clients"; "-3" ];
      [ "serve"; "--queue-bytes"; "0" ];
      [ "serve"; "--tcp"; "nocolon" ];
      [ "serve"; "--tcp"; "127.0.0.1:notaport" ];
      [ "serve"; "--tcp"; "127.0.0.1:99999" ];
      [ "feed"; "--tcp"; ":" ];
      [ "replay"; "pipe"; "--budget"; "0" ];
      [ "replay"; "pipe"; "--budget"; "many" ];
      [ "replay"; "pipe"; "--seed"; "banana" ];
      [ "replay"; "pipe"; "--scale"; "-2" ];
      [ "sanitize"; "pipe"; "--seed"; "0x" ];
      [ "lint"; "fs_bench"; "-j"; "0" ];
      [ "lint"; "fs_bench"; "-j"; "x" ];
      [ "lint"; "fs_bench"; "--jobs"; "-4" ];
      [ "lint"; "fs_bench"; "--scale"; "0" ];
      [ "lint"; "fs_bench"; "--scale"; "huge" ];
      [ "lint"; "fs_bench"; "--seed"; "3.5" ];
      [ "profile"; "pipe"; "--jobs"; "0" ];
    ]

(* Rejections must be one-line diagnostics naming the flag, not a
   stacktrace or a silent exit. *)
let test_checked_flags_diagnose () =
  let code, _, err = run [ "replay"; "pipe"; "--budget"; "0" ] in
  check Alcotest.bool "non-zero exit" true (code <> 0);
  check Alcotest.bool "names the flag" true (contains err "--budget");
  check Alcotest.bool "says what it expected" true
    (contains err "positive integer");
  let code, _, err = run [ "replay"; "pipe"; "--seed"; "banana" ] in
  check Alcotest.bool "seed: non-zero exit" true (code <> 0);
  check Alcotest.bool "seed: names the flag" true (contains err "--seed")

let test_replay_unknown_workload () =
  let code, _, err = run [ "replay"; "warp_drive" ] in
  check Alcotest.int "exit 1" 1 code;
  check Alcotest.bool "lists the known families" true
    (contains err "fs_bench")

let test_lint_flags_diagnose () =
  let code, _, err = run [ "lint"; "fs_bench"; "-j"; "0" ] in
  check Alcotest.bool "jobs: non-zero exit" true (code <> 0);
  check Alcotest.bool "jobs: names the flag" true (contains err "-j");
  check Alcotest.bool "jobs: says what it expected" true
    (contains err "positive integer");
  let code, _, err = run [ "lint"; "fs_bench"; "--scale"; "huge" ] in
  check Alcotest.bool "scale: non-zero exit" true (code <> 0);
  check Alcotest.bool "scale: names the flag" true (contains err "--scale")

let test_lint_unknown_workload () =
  let code, _, err = run [ "lint"; "warp_drive" ] in
  check Alcotest.int "exit 1" 1 code;
  check Alcotest.bool "says unknown workload" true
    (contains err "unknown workload");
  check Alcotest.bool "lists the known families" true
    (contains err "fs_bench")

let test_lint_json_smoke () =
  let code, out, _ = run [ "lint"; "pipe"; "--json" ] in
  check Alcotest.int "exit 0" 0 code;
  List.iter
    (fun key ->
      check Alcotest.bool (key ^ " present") true
        (contains out (Printf.sprintf "%S" key)))
    [ "workload"; "violations"; "unprotected_writes"; "order"; "gaps";
      "mined_rules" ]

let test_profile_json () =
  let code, out, _ = run [ "profile"; "pipe"; "--scale"; "1"; "--json" ] in
  check Alcotest.int "exit 0" 0 code;
  List.iter
    (fun key ->
      check Alcotest.bool (key ^ " present") true
        (contains out (Printf.sprintf "%S" key)))
    [ "workload"; "phases"; "wall_ms"; "cpu_ms"; "pipeline"; "counters" ];
  check Alcotest.bool "pipeline saw events" true
    (not (contains out "\"events\":0"))

let test_feed_needs_input () =
  let code, _, err = run [ "feed" ] in
  check Alcotest.int "exit 1" 1 code;
  check Alcotest.bool "explains itself" true
    (contains err "feed needs a TRACE")

(* ---- pack / unpack / binary fsck ---------------------------------- *)

let test_pack_unpack_roundtrip () =
  with_fixtures (fun ~dir ~clean ~bad:_ ->
      let packed = Filename.concat dir "clean.bin" in
      let code, out, _ = run [ "pack"; clean; "-o"; packed ] in
      check Alcotest.int "pack exits 0" 0 code;
      check Alcotest.bool "pack reports sizes" true (contains out "bytes");
      check Alcotest.bool "packed is smaller than half the text" true
        (2 * String.length (read_file packed)
        <= String.length (read_file clean));
      let unpacked = Filename.concat dir "clean2.trace" in
      let code, _, _ = run [ "unpack"; packed; "-o"; unpacked ] in
      check Alcotest.int "unpack exits 0" 0 code;
      check Alcotest.string "unpack reproduces the text bytes"
        (read_file clean) (read_file unpacked);
      (* The importer reads both forms identically (auto-detect). *)
      let _, from_text, _ = run [ "import"; clean ] in
      let _, from_bin, _ = run [ "import"; packed ] in
      check Alcotest.string "import stats agree across formats" from_text
        from_bin;
      let code, _, _ = run [ "import"; "--binary"; packed ] in
      check Alcotest.int "import --binary exits 0" 0 code)

let test_unpack_rejects_text () =
  with_fixtures (fun ~dir:_ ~clean ~bad:_ ->
      let code, _, err = run [ "unpack"; clean ] in
      check Alcotest.int "exit 1" 1 code;
      check Alcotest.bool "names the format" true (contains err "LDOCBIN1"))

(* The regression this pins: fsck used to misparse packed traces as
   text rows (every byte run an "unknown tag"); it must detect the
   format instead and fsck the decoded events. *)
let test_fsck_detects_binary () =
  with_fixtures (fun ~dir ~clean ~bad:_ ->
      let packed = Filename.concat dir "clean.bin" in
      let code, _, _ = run [ "pack"; clean; "-o"; packed ] in
      check Alcotest.int "pack exits 0" 0 code;
      let code, out, _ = run [ "fsck"; packed ] in
      check Alcotest.int "binary fsck exits 0" 0 code;
      check Alcotest.bool "names the binary format" true
        (contains out "binary (LDOCBIN1)");
      check Alcotest.bool "clean" true (contains out "clean: no anomalies");
      check Alcotest.bool "not misparsed as text" true
        (not (contains out "unknown-tag"));
      let code, out, _ = run [ "fsck"; "--json"; packed ] in
      check Alcotest.int "json exit 0" 0 code;
      check Alcotest.bool "json carries the format" true
        (contains out "\"format\":\"binary (LDOCBIN1)\"");
      (* A torn tail must surface as a diagnosed anomaly, not a crash. *)
      let torn = Filename.concat dir "torn.bin" in
      let bytes = read_file packed in
      let oc = open_out_bin torn in
      output_string oc (String.sub bytes 0 (String.length bytes - 5));
      close_out oc;
      let code, out, _ = run [ "fsck"; torn ] in
      check Alcotest.int "torn fsck exits 1" 1 code;
      check Alcotest.bool "torn tail diagnosed" true
        (contains out "reader anomalies"))

let () =
  Alcotest.run "cli"
    [
      ( "fsck",
        [
          Alcotest.test_case "clean trace" `Quick test_fsck_clean;
          Alcotest.test_case "metrics written on failing exit" `Quick
            test_metrics_written_on_failing_exit;
          Alcotest.test_case "json report" `Quick test_fsck_json;
          Alcotest.test_case "limit flag" `Quick test_fsck_limit;
        ] );
      ( "flags",
        [
          Alcotest.test_case "checked flags reject" `Quick
            test_checked_flags_reject;
          Alcotest.test_case "checked flags diagnose" `Quick
            test_checked_flags_diagnose;
          Alcotest.test_case "replay rejects unknown workload" `Quick
            test_replay_unknown_workload;
          Alcotest.test_case "lint flags diagnose" `Quick
            test_lint_flags_diagnose;
          Alcotest.test_case "lint rejects unknown workload" `Quick
            test_lint_unknown_workload;
          Alcotest.test_case "lint json smoke" `Quick test_lint_json_smoke;
          Alcotest.test_case "profile json smoke" `Quick test_profile_json;
          Alcotest.test_case "feed needs input" `Quick test_feed_needs_input;
        ] );
      ( "binary",
        [
          Alcotest.test_case "pack/unpack round-trip" `Quick
            test_pack_unpack_roundtrip;
          Alcotest.test_case "unpack rejects text input" `Quick
            test_unpack_rejects_text;
          Alcotest.test_case "fsck detects binary traces" `Quick
            test_fsck_detects_binary;
        ] );
    ]
