(* The serve daemon: framing, protocol, sans-IO engine, chaos matrix.

   Layers under test, bottom up:

   - [Frame]: incremental codec units plus the satellite differential
     against the WAL segment reader — the wire protocol *is* the WAL
     record discipline, so the same byte stream must parse identically
     through both, including under byte-dribbling and torn tails.
   - [Proto]: message round-trips and malformed-payload rejection.
   - [Server]: the sans-IO engine driven directly with virtual time —
     sequencing (nack / idempotent retransmit / seal-count guard),
     backpressure and per-session isolation, fault isolation (garbled
     connection vs crashed worker), the supervisor (backoff, durable
     rebuild, permanent failure), timeouts, supersede, shutdown; the
     off-loop seal (the [Sealing] interim state pinned with a parked
     runner, then a real analysis domain proving the loop keeps
     serving); debounced rule-subscription pushes checked against a
     [stream] query at the same watermark. Every completed session
     checks the byte-identity oracle: mined rules and violations equal
     to the batch pipeline's.
   - [Chaos]: one run per fault family and per transport segmentation
     model (seeded; the @chaos alias and LOCKDOC_CHAOS_SEEDS widen the
     matrix), asserting the fault actually bit via the evidence
     counters.
   - [Sockserv]: a forked daemon on a real Unix socket — and again on
     TCP — two sessions fed through the reconnect-capable client,
     follow-mode pushes, status query, shutdown. *)

module Frame = Lockdoc_serve.Frame
module Proto = Lockdoc_serve.Proto
module Server = Lockdoc_serve.Server
module Chaos = Lockdoc_serve.Chaos
module Sockserv = Lockdoc_serve.Sockserv
module Wal = Lockdoc_db.Wal
module Import = Lockdoc_db.Import
module Crashpoint = Lockdoc_db.Crashpoint
module Trace = Lockdoc_trace.Trace
module Run = Lockdoc_ksim.Run
module Pool = Lockdoc_util.Pool
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report

let check = Alcotest.check

let n_seeds =
  match Sys.getenv_opt "LOCKDOC_CHAOS_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 1)
  | None -> 1

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ---- Shared fixtures ---------------------------------------------- *)

let pipe_trace = lazy (Run.workload_trace "pipe")
let device_trace = lazy (Run.workload_trace "device")

(* Must mirror [Server.seal_session] (and [Chaos.batch_reference]):
   same engine path, same thresholds, same report serialisation. *)
let batch_ref ?(tac = 0.9) ?(jobs = 1) (trace : Trace.t) =
  let g = Import.engine trace.layouts in
  Array.iter (Import.feed g) trace.events;
  ignore (Import.finalize g);
  let dataset = Dataset.of_store (Import.engine_store g) in
  let mined = Derivator.derive_all ~tac ~jobs dataset in
  let rules = Report.mined_to_json mined in
  let violations =
    Report.violations_to_json (Violation.find ~jobs dataset mined)
  in
  (Array.length trace.events, rules, violations)

(* ---- Frame codec -------------------------------------------------- *)

let drain d =
  let rec go acc =
    match Frame.next d with
    | Frame.Frame p -> go (p :: acc)
    | Frame.Awaiting -> List.rev acc
    | Frame.Corrupt reason -> Alcotest.failf "unexpected corrupt: %s" reason
  in
  go []

let sample_payloads =
  [ ""; "a"; "hello\tworld\nsecond line"; String.make 1200 'x'; "rows\t0\t0" ]

let test_frame_roundtrip () =
  let d = Frame.decoder () in
  List.iter (fun p -> Frame.feed d (Frame.encode p)) sample_payloads;
  check (Alcotest.list Alcotest.string) "payloads" sample_payloads (drain d);
  check Alcotest.int "fully consumed" 0 (Frame.buffered d)

let test_frame_chunked () =
  let stream = String.concat "" (List.map Frame.encode sample_payloads) in
  List.iter
    (fun chunk ->
      let d = Frame.decoder () in
      let got = ref [] in
      let off = ref 0 in
      while !off < String.length stream do
        let len = min chunk (String.length stream - !off) in
        Frame.feed d ~off:!off ~len stream;
        got := !got @ drain d;
        off := !off + len
      done;
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "chunk=%d" chunk)
        sample_payloads !got)
    [ 1; 2; 3; 7; String.length stream ]

let test_frame_corrupt_latches () =
  let f = Frame.encode "some payload" in
  let bad = Bytes.of_string f in
  (* Flip a payload bit: the CRC check must catch it. *)
  Bytes.set bad (Frame.header_bytes + 3)
    (Char.chr (Char.code (Bytes.get bad (Frame.header_bytes + 3)) lxor 0x40));
  let d = Frame.decoder () in
  Frame.feed d (Bytes.to_string bad);
  (match Frame.next d with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt after bit flip");
  (* Latched: further valid bytes cannot resynchronise a live stream. *)
  Frame.feed d (Frame.encode "valid");
  (match Frame.next d with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "Corrupt must be permanent");
  check Alcotest.bool "is_corrupt" true (Frame.is_corrupt d)

let test_frame_length_ceiling () =
  (* A decoder with a lowered ceiling rejects a frame the default
     encoder happily produces — before buffering the payload. *)
  let d = Frame.decoder ~max_frame:64 () in
  Frame.feed d (Frame.encode (String.make 100 'y'));
  match Frame.next d with
  | Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt for over-limit length"

(* ---- Satellite: frame decoder vs WAL segment reader --------------- *)

let wal_payloads parsed = List.map snd parsed.Wal.ps_records

let test_frame_wal_differential () =
  let stream = String.concat "" (List.map Frame.encode sample_payloads) in
  (* Complete stream: both parsers yield the same payload sequence and
     the WAL reader sees no torn tail. *)
  let parsed = Wal.parse_segment ~start:0 stream in
  check
    (Alcotest.list Alcotest.string)
    "wal sees the frame payloads" sample_payloads (wal_payloads parsed);
  check Alcotest.bool "no torn tail" true (parsed.Wal.ps_torn = None);
  (* Byte-dribbled decode equals the WAL parse for every chunk size. *)
  List.iter
    (fun chunk ->
      let d = Frame.decoder () in
      let got = ref [] in
      let off = ref 0 in
      while !off < String.length stream do
        let len = min chunk (String.length stream - !off) in
        Frame.feed d ~off:!off ~len stream;
        got := !got @ drain d;
        off := !off + len
      done;
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "dribble chunk=%d equals wal" chunk)
        (wal_payloads parsed) !got)
    [ 1; 2; 3; 7 ]

let test_frame_wal_torn_tail () =
  (* Every truncation point: the live decoder treats the torn tail as
     Awaiting (more bytes may come), the WAL reader as a torn record —
     and both deliver exactly the same complete prefix. *)
  let stream = String.concat "" (List.map Frame.encode sample_payloads) in
  for cut = 0 to String.length stream - 1 do
    let prefix = String.sub stream 0 cut in
    let parsed = Wal.parse_segment ~start:0 prefix in
    let d = Frame.decoder () in
    Frame.feed d prefix;
    let frames = drain d in
    check
      (Alcotest.list Alcotest.string)
      (Printf.sprintf "cut=%d same records" cut)
      (wal_payloads parsed) frames;
    check Alcotest.bool
      (Printf.sprintf "cut=%d truncation is not corruption" cut)
      false (Frame.is_corrupt d)
  done

let test_frame_wal_bitflip () =
  (* Damage inside the middle record: both parsers must deliver the
     records before it, then flag the damage (decoder latches Corrupt;
     WAL reader reports a torn/damaged tail and stops). *)
  let stream = String.concat "" (List.map Frame.encode sample_payloads) in
  let first_two =
    String.length (Frame.encode (List.nth sample_payloads 0))
    + String.length (Frame.encode (List.nth sample_payloads 1))
  in
  let flip_at = first_two + Frame.header_bytes + 2 in
  let bad = Bytes.of_string stream in
  Bytes.set bad flip_at (Char.chr (Char.code (Bytes.get bad flip_at) lxor 1));
  let bad = Bytes.to_string bad in
  let expected = [ List.nth sample_payloads 0; List.nth sample_payloads 1 ] in
  let parsed = Wal.parse_segment ~start:0 bad in
  check
    (Alcotest.list Alcotest.string)
    "wal keeps the clean prefix" expected (wal_payloads parsed);
  check Alcotest.bool "wal flags the damage" true (parsed.Wal.ps_torn <> None);
  let d = Frame.decoder () in
  Frame.feed d bad;
  let rec collect acc =
    match Frame.next d with
    | Frame.Frame p -> collect (p :: acc)
    | Frame.Awaiting -> Alcotest.fail "decoder must notice the bit flip"
    | Frame.Corrupt _ -> List.rev acc
  in
  check
    (Alcotest.list Alcotest.string)
    "decoder keeps the clean prefix" expected (collect [])

(* ---- Proto -------------------------------------------------------- *)

let client_msgs : Proto.client_msg list =
  [
    Hello { version = Proto.version; session = "abc-1.2_X" };
    Rows { start = 0; lines = [] };
    Rows { start = 17; lines = [ "E\topen\tfs/open.c:12"; "T\tfoo;8;f,0,4,d" ] };
    Seal { rows = 0 };
    Seal { rows = 123456 };
    Query Status;
    Query Metrics;
    Ping;
    Bye;
    Shutdown;
  ]

let server_msgs : Proto.server_msg list =
  [
    Welcome { resume = 42 };
    Nack { expected = 7 };
    Retry_after { ms = 50; expected = Some 3; reason = "queue\tfull" };
    Retry_after { ms = 10; expected = None; reason = "backoff" };
    Err { code = "garbled"; reason = "crc mismatch\nat byte 9" };
    Pong;
    Sealed { events = 9; rules = "{\"rules\":[]}"; violations = "{}" };
    Info { json = "{\"sessions\":[]}" };
    Closing { reason = "idle-timeout" };
  ]

let test_proto_roundtrip () =
  List.iter
    (fun m ->
      match Proto.client_of_payload (Proto.client_to_payload m) with
      | Ok m' ->
          check Alcotest.bool "client msg round-trips" true (m = m')
      | Error e -> Alcotest.failf "client decode failed: %s" e)
    client_msgs;
  List.iter
    (fun m ->
      match Proto.server_of_payload (Proto.server_to_payload m) with
      | Ok m' ->
          check Alcotest.bool "server msg round-trips" true (m = m')
      | Error e -> Alcotest.failf "server decode failed: %s" e)
    server_msgs

let test_proto_rejects_malformed () =
  let bad =
    [
      "";
      "frobnicate";
      "hello\tnot-a-number\tsess";
      "rows\t-1\t0";
      "rows\t0\t2\nonly one row";
      "seal";
      "seal\t-5";
      "query\tbogus";
    ]
  in
  List.iter
    (fun payload ->
      match Proto.client_of_payload payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed payload %S" payload)
    bad

(* ---- Server engine (sans-IO, virtual time) ------------------------ *)

let enc m = Frame.encode (Proto.client_to_payload m)
let send srv ~now cid m = Server.on_bytes srv ~now cid (enc m)

let expect_silent label = function
  | [] -> ()
  | outs -> Alcotest.failf "%s: expected no outputs, got %d" label
              (List.length outs)

let only_send label = function
  | [ Server.Send (cid, m) ] -> (cid, m)
  | outs ->
      Alcotest.failf "%s: expected exactly one Send, got %d outputs" label
        (List.length outs)

let expect_welcome label outs =
  match only_send label outs with
  | _, Proto.Welcome { resume } -> resume
  | _ -> Alcotest.failf "%s: expected Welcome" label

let expect_err_close label code = function
  | [ Server.Send (_, Proto.Err { code = c; _ }); Server.Close _ ] ->
      check Alcotest.string label code c
  | _ -> Alcotest.failf "%s: expected Err %s + Close" label code

let session_view srv id =
  match List.find_opt (fun v -> v.Server.v_id = id) (Server.sessions srv) with
  | Some v -> v
  | None -> Alcotest.failf "session %s not found" id

let connect srv ~now session =
  let cid, outs = Server.accept srv ~now in
  expect_silent "accept" outs;
  let resume =
    expect_welcome "hello"
      (send srv ~now cid
         (Proto.Hello { version = Proto.version; session }))
  in
  (cid, resume)

(* Client-side flow control: send a frame; absorb Retry_after by
   stepping the server (draining its queues) and retrying. *)
let rec send_flow srv ~now cid ~start lines =
  match send srv ~now cid (Proto.Rows { start; lines }) with
  | [] -> ()
  | [ Server.Send (_, Proto.Retry_after _) ] ->
      ignore (Server.step srv ~now);
      send_flow srv ~now cid ~start lines
  | outs -> ignore (only_send "rows" outs)

let rec batches n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let b, rest = take n [] l in
      b :: batches n rest

let stream_all srv ~now cid ?(batch = 200) ~start lines =
  let cursor = ref start in
  List.iter
    (fun b ->
      send_flow srv ~now cid ~start:!cursor b;
      cursor := !cursor + List.length b)
    (batches batch lines)

let expect_sealed label outs =
  match only_send label outs with
  | _, Proto.Sealed { events; rules; violations } -> (events, rules, violations)
  | _ -> Alcotest.failf "%s: expected Sealed" label

let check_oracle label trace (events, rules, violations) =
  let e, r, v = batch_ref trace in
  check Alcotest.int (label ^ ": events") e events;
  check Alcotest.string (label ^ ": rules byte-identical") r rules;
  check Alcotest.string (label ^ ": violations byte-identical") v violations

let test_server_seal_oracle () =
  let trace = Lazy.force pipe_trace in
  let lines = Trace.to_lines trace in
  let total = List.length lines in
  let srv = Server.create () in
  let now = 0.0 in
  let cid, resume = connect srv ~now "s1" in
  check Alcotest.int "fresh session resumes at 0" 0 resume;
  stream_all srv ~now cid ~start:0 lines;
  let sealed =
    expect_sealed "seal" (send srv ~now cid (Proto.Seal { rows = total }))
  in
  check_oracle "pipe via serve" trace sealed;
  (* Sealing is idempotent: the cached result comes back byte-identical. *)
  let again =
    expect_sealed "re-seal" (send srv ~now cid (Proto.Seal { rows = total }))
  in
  check Alcotest.bool "re-seal returns the cached result" true (sealed = again);
  check Alcotest.string "state" "sealed" (session_view srv "s1").Server.v_state

let test_server_nack_and_idempotency () =
  let lines = Trace.to_lines (Lazy.force pipe_trace) in
  let b = batches 50 lines in
  let b0 = List.nth b 0 and b1 = List.nth b 1 in
  let srv = Server.create () in
  let now = 0.0 in
  let cid, _ = connect srv ~now "s" in
  expect_silent "first frame" (send srv ~now cid (Proto.Rows { start = 0; lines = b0 }));
  (* A gap answers Nack with the accepted watermark... *)
  (match only_send "gap" (send srv ~now cid (Proto.Rows { start = 120; lines = b1 })) with
  | _, Proto.Nack { expected } -> check Alcotest.int "nack watermark" 50 expected
  | _ -> Alcotest.fail "expected Nack on sequence gap");
  (* ... a pure retransmission is absorbed silently ... *)
  expect_silent "retransmit" (send srv ~now cid (Proto.Rows { start = 0; lines = b0 }));
  check Alcotest.int "accepted unchanged" 50 (session_view srv "s").Server.v_accepted;
  (* ... and an overlapping frame contributes only its fresh suffix. *)
  let overlap =
    List.filteri (fun i _ -> i >= 40) b0 @ b1
  in
  expect_silent "overlap" (send srv ~now cid (Proto.Rows { start = 40; lines = overlap }));
  check Alcotest.int "accepted after overlap" 100
    (session_view srv "s").Server.v_accepted

let test_server_seal_count_guard () =
  let lines = Trace.to_lines (Lazy.force pipe_trace) in
  let b0 = List.hd (batches 50 lines) in
  let srv = Server.create () in
  let now = 0.0 in
  let cid, _ = connect srv ~now "s" in
  expect_silent "rows" (send srv ~now cid (Proto.Rows { start = 0; lines = b0 }));
  (* The client thinks it streamed more rows than the server accepted:
     frames were lost in the tail. Seal must refuse and rewind. *)
  match only_send "seal mismatch" (send srv ~now cid (Proto.Seal { rows = 80 })) with
  | _, Proto.Nack { expected } -> check Alcotest.int "rewind to" 50 expected
  | _ -> Alcotest.fail "expected Nack on seal row-count mismatch"

let frame_bytes lines =
  List.fold_left (fun a l -> a + String.length l + 1) 0 lines

let take_bytes budget lines =
  let rec go acc b = function
    | l :: tl when b + String.length l + 1 <= budget ->
        go (l :: acc) (b + String.length l + 1) tl
    | rest -> (List.rev acc, rest)
  in
  go [] 0 lines

let test_server_backpressure_isolation () =
  let lines = Trace.to_lines (Lazy.force pipe_trace) in
  (* Frame 1 (layouts + some events) sized to be admitted exactly;
     frame 2 sized to overflow the per-session cap while it is still
     queued, yet fit once drained. *)
  let f1, rest = take_bytes 9000 lines in
  let q = frame_bytes f1 + 8 in
  let f2, rest = take_bytes (q - 100) rest in
  assert (frame_bytes f2 > q - frame_bytes f1 + 4096);
  let cfg = { Server.default_config with queue_bytes = q } in
  let srv = Server.create ~config:cfg () in
  let now = 0.0 in
  let a, _ = connect srv ~now "a" in
  expect_silent "f1 admitted" (send srv ~now a (Proto.Rows { start = 0; lines = f1 }));
  let accepted1 = (session_view srv "a").Server.v_accepted in
  check Alcotest.int "f1 rows accepted" (List.length f1) accepted1;
  (* Queue still holds f1's events: f2 is shed whole, with the resume
     watermark, and nothing about the session changes. *)
  (match
     only_send "f2 shed"
       (send srv ~now a (Proto.Rows { start = accepted1; lines = f2 }))
   with
  | _, Proto.Retry_after { expected; reason; ms } ->
      check (Alcotest.option Alcotest.int) "watermark" (Some accepted1) expected;
      check Alcotest.bool "session-level shed" true
        (String.length reason > 0 && ms > 0)
  | _ -> Alcotest.fail "expected Retry_after when the session queue is full");
  check Alcotest.int "shed frame not accepted" accepted1
    (session_view srv "a").Server.v_accepted;
  check Alcotest.bool "global budget holds" true
    (Server.pending_total srv <= cfg.Server.total_queue_bytes);
  (* A second session is untouched by a's pressure: hard isolation. *)
  let bq, _ = connect srv ~now "b" in
  let fb, _ = take_bytes 2000 (Trace.to_lines (Lazy.force device_trace)) in
  expect_silent "b admitted" (send srv ~now bq (Proto.Rows { start = 0; lines = fb }));
  check Alcotest.int "b accepted" (List.length fb)
    (session_view srv "b").Server.v_accepted;
  (* Draining makes room; the very same frame is then admitted, and the
     stream runs to a seal that matches the batch pipeline. *)
  ignore (Server.step srv ~now);
  check Alcotest.int "drained" 0 (Server.pending_total srv);
  expect_silent "f2 after drain"
    (send srv ~now a (Proto.Rows { start = accepted1; lines = f2 }));
  let cursor = ref (accepted1 + List.length f2) in
  List.iter
    (fun bch ->
      send_flow srv ~now a ~start:!cursor bch;
      cursor := !cursor + List.length bch)
    (batches 100 rest);
  let sealed =
    expect_sealed "seal" (send srv ~now a (Proto.Seal { rows = !cursor }))
  in
  check_oracle "backpressured stream" (Lazy.force pipe_trace) sealed

let test_server_garbled_connection_session_survives () =
  let trace = Lazy.force pipe_trace in
  let lines = Trace.to_lines trace in
  let total = List.length lines in
  let half = batches (total / 2) lines in
  let first = List.hd half in
  let srv = Server.create () in
  let now = 0.0 in
  let c1, _ = connect srv ~now "s" in
  stream_all srv ~now c1 ~start:0 first;
  let accepted = (session_view srv "s").Server.v_accepted in
  (* Garbage on the wire kills the connection — and only it. *)
  expect_err_close "garbled" "garbled"
    (Server.on_bytes srv ~now c1 "\x04\x00\x00\x00\xde\xad\xbe\xefXXXX");
  let v = session_view srv "s" in
  check Alcotest.bool "session detached" false v.Server.v_attached;
  check Alcotest.int "accepted rows intact" accepted v.Server.v_accepted;
  check Alcotest.int "no connection left" 0 (Server.n_conns srv);
  (* Reconnect resumes exactly at the watermark and completes. *)
  let c2, resume = connect srv ~now "s" in
  check Alcotest.int "resume at watermark" accepted resume;
  let remaining = List.filteri (fun i _ -> i >= accepted) lines in
  stream_all srv ~now c2 ~start:accepted remaining;
  let sealed =
    expect_sealed "seal" (send srv ~now c2 (Proto.Seal { rows = total }))
  in
  check_oracle "post-garble resume" trace sealed

let test_server_idle_timeout_and_gc () =
  let cfg = { Server.default_config with session_timeout = 1.0 } in
  (* A mute connection is idle-closed; its session — idle exactly as
     long — is collected in the same tick. *)
  let srv = Server.create ~config:cfg () in
  let _c, _ = connect srv ~now:0.0 "idle" in
  expect_silent "quiet step" (Server.step srv ~now:0.5);
  (match Server.step srv ~now:2.5 with
  | [ Server.Send (_, Proto.Closing { reason }); Server.Close _ ] ->
      check Alcotest.string "reason" "idle-timeout" reason
  | _ -> Alcotest.fail "expected idle close");
  check Alcotest.int "conn gone" 0 (Server.n_conns srv);
  check Alcotest.int "session collected" 0 (Server.n_sessions srv);
  (* A polite Bye detaches immediately; the session stays resumable
     for a full timeout after its last activity, then is GC'd. *)
  let srv = Server.create ~config:cfg () in
  let c, _ = connect srv ~now:0.0 "bye" in
  (match send srv ~now:0.9 c Proto.Bye with
  | [ Server.Send (_, Proto.Closing _); Server.Close _ ] -> ()
  | _ -> Alcotest.fail "expected Closing bye");
  expect_silent "within grace" (Server.step srv ~now:1.5);
  check Alcotest.int "session lingers (resumable)" 1 (Server.n_sessions srv);
  expect_silent "past grace" (Server.step srv ~now:2.5);
  check Alcotest.int "session gc'd" 0 (Server.n_sessions srv)

let test_server_supersede () =
  let srv = Server.create () in
  let now = 0.0 in
  let c1, _ = connect srv ~now "s" in
  let c2, outs = Server.accept srv ~now in
  expect_silent "accept" outs;
  (match
     send srv ~now c2 (Proto.Hello { version = Proto.version; session = "s" })
   with
  | [
      Server.Send (o1, Proto.Closing { reason = "superseded" });
      Server.Close (o2, _);
      Server.Send (n, Proto.Welcome _);
    ] ->
      check Alcotest.int "old conn told" c1 o1;
      check Alcotest.int "old conn closed" c1 o2;
      check Alcotest.int "new conn welcomed" c2 n
  | _ -> Alcotest.fail "expected supersede then welcome");
  check Alcotest.int "one live conn" 1 (Server.n_conns srv)

let test_server_crash_backoff_durable_recovery () =
  let root = temp_dir "serve_recover" in
  Fun.protect
    ~finally:(fun () ->
      Crashpoint.reset ();
      rm_rf root)
    (fun () ->
      let trace = Lazy.force pipe_trace in
      let lines = Trace.to_lines trace in
      let total = List.length lines in
      let cfg =
        {
          Server.default_config with
          durable_root = Some root;
          restart_backoff = 0.5;
          max_backoff = 5.0;
        }
      in
      let srv = Server.create ~config:cfg () in
      let c1, _ = connect srv ~now:0.0 "s" in
      let first, rest =
        let b = batches (total / 2) lines in
        (List.hd b, List.concat (List.tl b))
      in
      stream_all srv ~now:0.0 c1 ~start:0 first;
      let accepted = (session_view srv "s").Server.v_accepted in
      (* The next rows frame hits an armed crash point inside the
         worker: the supervisor tombstones the session. *)
      Crashpoint.arm ~after:1;
      let crash_frame, _ = take_bytes 2000 rest in
      expect_err_close "worker crash" "session-failed"
        (send srv ~now:0.0 c1
           (Proto.Rows { start = accepted; lines = crash_frame }));
      Crashpoint.reset ();
      let v = session_view srv "s" in
      check Alcotest.int "one restart on the ledger" 1 v.Server.v_restarts;
      check Alcotest.bool "tombstoned" true
        (String.length v.Server.v_state >= 6
        && String.sub v.Server.v_state 0 6 = "failed");
      (* Reconnecting inside the backoff window is shed with retry-after. *)
      let c2, outs = Server.accept srv ~now:0.1 in
      expect_silent "accept" outs;
      (match
         send srv ~now:0.1 c2
           (Proto.Hello { version = Proto.version; session = "s" })
       with
      | [ Server.Send (_, Proto.Retry_after { ms; _ }); Server.Close _ ] ->
          check Alcotest.bool "positive backoff hint" true (ms > 0)
      | _ -> Alcotest.fail "expected Retry_after during backoff");
      (* Past the backoff the session rebuilds from its journal and
         resumes at the pre-crash watermark — the crashing frame was
         never acknowledged, so the client resends it. *)
      let c3, resume = connect srv ~now:2.0 "s" in
      check Alcotest.int "journal rebuild resumes at watermark" accepted resume;
      stream_all srv ~now:2.0 c3 ~start:accepted
        (List.filteri (fun i _ -> i >= accepted) lines);
      let sealed =
        expect_sealed "seal" (send srv ~now:2.0 c3 (Proto.Seal { rows = total }))
      in
      check_oracle "crash-recovered stream" trace sealed)

let test_server_permanent_failure () =
  Fun.protect ~finally:Crashpoint.reset (fun () ->
      let cfg = { Server.default_config with max_restarts = 0 } in
      let srv = Server.create ~config:cfg () in
      let lines = Trace.to_lines (Lazy.force pipe_trace) in
      let f1, _ = take_bytes 2000 lines in
      let c1, _ = connect srv ~now:0.0 "s" in
      Crashpoint.arm ~after:1;
      expect_err_close "crash" "session-failed"
        (send srv ~now:0.0 c1 (Proto.Rows { start = 0; lines = f1 }));
      Crashpoint.reset ();
      (* max_restarts exhausted: the supervisor gives up for good. *)
      let c2, outs = Server.accept srv ~now:10.0 in
      expect_silent "accept" outs;
      expect_err_close "permanent" "permanent-failure"
        (send srv ~now:10.0 c2
           (Proto.Hello { version = Proto.version; session = "s" })))

let test_server_rejections () =
  let srv = Server.create () in
  let now = 0.0 in
  (* Version skew. *)
  let c, outs = Server.accept srv ~now in
  expect_silent "accept" outs;
  expect_err_close "version skew" "version"
    (send srv ~now c
       (Proto.Hello { version = Proto.version + 1; session = "s" }));
  (* Hostile session id (a path, not a name). *)
  let c, _ = Server.accept srv ~now in
  expect_err_close "bad session id" "proto"
    (send srv ~now c
       (Proto.Hello { version = Proto.version; session = "../escape" }));
  (* Rows before hello. *)
  let c, _ = Server.accept srv ~now in
  expect_err_close "rows before hello" "proto"
    (send srv ~now c (Proto.Rows { start = 0; lines = [] }));
  (* Connection cap: shed gracefully with a retry hint, then close. *)
  let cfg = { Server.default_config with max_clients = 1 } in
  let srv = Server.create ~config:cfg () in
  let _c1, outs = Server.accept srv ~now in
  expect_silent "first accept" outs;
  (match Server.accept srv ~now with
  | _, [ Server.Send (_, Proto.Retry_after _); Server.Close (_, reason) ] ->
      check Alcotest.string "over capacity" "too-many-clients" reason
  | _ -> Alcotest.fail "expected Retry_after + Close over capacity")

let test_server_ping_query_bye_shutdown () =
  let srv = Server.create () in
  let now = 0.0 in
  let c1, _ = connect srv ~now "s" in
  (match only_send "ping" (send srv ~now c1 Proto.Ping) with
  | _, Proto.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  (match only_send "status" (send srv ~now c1 (Proto.Query Proto.Status)) with
  | _, Proto.Info { json } ->
      check Alcotest.bool "status lists sessions" true
        (contains json "\"sessions\"")
  | _ -> Alcotest.fail "expected Info for status query");
  (match only_send "metrics" (send srv ~now c1 (Proto.Query Proto.Metrics)) with
  | _, Proto.Info _ -> ()
  | _ -> Alcotest.fail "expected Info for metrics query");
  (* Bye detaches politely; the session stays. *)
  (match send srv ~now c1 Proto.Bye with
  | [ Server.Send (_, Proto.Closing { reason = "bye" }); Server.Close _ ] -> ()
  | _ -> Alcotest.fail "expected Closing bye");
  check Alcotest.int "session survives bye" 1 (Server.n_sessions srv);
  (* Shutdown closes every connection and refuses new ones. *)
  let c2, _ = connect srv ~now "s" in
  let _c3, outs = Server.accept srv ~now in
  expect_silent "accept" outs;
  let outs = send srv ~now c2 Proto.Shutdown in
  let closings =
    List.length
      (List.filter
         (function Server.Send (_, Proto.Closing _) -> true | _ -> false)
         outs)
  in
  check Alcotest.bool "everyone told" true (closings >= 2);
  check Alcotest.bool "shutting down" true (Server.shutting_down srv);
  check Alcotest.int "no conns left" 0 (Server.n_conns srv);
  let _c, outs = Server.accept srv ~now in
  expect_err_close "accept during shutdown" "shutting-down" outs

(* ---- Stream query ------------------------------------------------- *)

(* Batch-mine the first [k] events of [trace]: the reference answer for
   a stream query — and a subscription push — at that watermark. *)
let prefix_ref trace k =
  let prefix = { trace with Trace.events = Array.sub trace.Trace.events 0 k } in
  let g = Import.engine prefix.Trace.layouts in
  Array.iter (Import.feed g) prefix.Trace.events;
  let dataset = Dataset.of_store (Import.engine_store g) in
  let mined = Derivator.derive_all dataset in
  ( Report.mined_to_json mined,
    Report.violations_to_json (Violation.find dataset mined) )

(* The live-rules oracle: after accepting k rows, a [stream] query must
   answer exactly what the batch pipeline mines from that k-event
   prefix — byte for byte — and must not seal the session: the rest of
   the trace still streams in and the final seal matches the full
   oracle. *)
let test_server_stream_query () =
  let trace = Lazy.force pipe_trace in
  let lines = Trace.to_lines trace in
  let total = List.length lines in
  let n_layouts = List.length trace.Trace.layouts in
  let srv = Server.create () in
  let now = 0.0 in
  let cid, _ = connect srv ~now "s" in
  let stream_json label =
    match
      only_send label (send srv ~now cid (Proto.Query Proto.Stream_rules))
    with
    | _, Proto.Info { json } -> json
    | _ -> Alcotest.failf "%s: expected Info" label
  in
  let expected ~state ~events ~accepted (rules, violations) =
    Printf.sprintf
      {|{"session":"s","state":"%s","events":%d,"accepted_rows":%d,"rules":%s,"violations":%s}|}
      state events accepted rules violations
  in
  (* Nothing accepted yet: live rules are empty, nothing seals. *)
  check Alcotest.string "empty session"
    (expected ~state:"streaming" ~events:0 ~accepted:0 ("[]", "[]"))
    (stream_json "empty");
  (* Half the stream in: the answer is the batch mine of exactly that
     prefix. *)
  let half = total / 2 in
  stream_all srv ~now cid ~start:0 (List.filteri (fun i _ -> i < half) lines);
  check Alcotest.string "half-stream rules match batch prefix"
    (expected ~state:"streaming" ~events:(half - n_layouts) ~accepted:half
       (prefix_ref trace (half - n_layouts)))
    (stream_json "half");
  check Alcotest.string "query does not seal" "streaming"
    (session_view srv "s").Server.v_state;
  (* The rest still streams in afterwards and the seal matches the
     full-trace oracle: the queries disturbed nothing. *)
  stream_all srv ~now cid ~start:half
    (List.filteri (fun i _ -> i >= half) lines);
  let sealed =
    expect_sealed "seal" (send srv ~now cid (Proto.Seal { rows = total }))
  in
  check_oracle "seal after stream queries" trace sealed;
  (* A sealed session answers its cached final result. *)
  let _, rules, violations = sealed in
  check Alcotest.string "sealed stream query answers the cached result"
    (expected ~state:"sealed" ~events:(Array.length trace.Trace.events)
       ~accepted:total (rules, violations))
    (stream_json "sealed")

(* ---- Off-loop sealing --------------------------------------------- *)

(* The [Sealing] interim state, pinned with a runner that parks the
   seal job instead of executing it: every reply the engine gives while
   the derivation is "in flight" is deterministic and assertable. *)
let test_server_sealing_state_machine () =
  let trace = Lazy.force pipe_trace in
  let lines = Trace.to_lines trace in
  let total = List.length lines in
  let parked = ref [] in
  let srv = Server.create ~runner:(fun f -> parked := !parked @ [ f ]) () in
  let now = 0.0 in
  let cid, _ = connect srv ~now "s" in
  stream_all srv ~now cid ~start:0 lines;
  (* Seal is accepted; the job is parked, so no reply yet. *)
  expect_silent "seal parks the job"
    (send srv ~now cid (Proto.Seal { rows = total }));
  check Alcotest.int "one job parked" 1 (List.length !parked);
  check Alcotest.string "interim state" "sealing"
    (session_view srv "s").Server.v_state;
  (* A retransmitted seal and a stream query are held off, not refused:
     retry-after carrying the accepted watermark. *)
  (match
     only_send "re-seal" (send srv ~now cid (Proto.Seal { rows = total }))
   with
  | _, Proto.Retry_after { expected; reason; _ } ->
      check (Alcotest.option Alcotest.int) "watermark" (Some total) expected;
      check Alcotest.string "re-seal reason" "seal in progress" reason
  | _ -> Alcotest.fail "expected Retry_after for a seal race");
  (match
     only_send "stream query"
       (send srv ~now cid (Proto.Query Proto.Stream_rules))
   with
  | _, Proto.Retry_after { reason; _ } ->
      check Alcotest.string "query reason" "seal in progress" reason
  | _ -> Alcotest.fail "expected Retry_after for a mid-seal stream query");
  (* Late rows are a protocol error: the stream contract ended at seal. *)
  expect_err_close "late rows" "proto"
    (send srv ~now cid (Proto.Rows { start = total; lines = [ "E\topen\tx:1" ] }));
  (* The sealing session is exempt from idle GC while the job runs. *)
  expect_silent "gc pass" (Server.step srv ~now:1000.0);
  check Alcotest.int "sealing session survives gc" 1 (Server.n_sessions srv);
  (* A reconnect attaches to the sealing session at the watermark. *)
  let _c2, resume = connect srv ~now:1000.0 "s" in
  check Alcotest.int "resume at watermark" total resume;
  (* The job completes; the next step delivers [Sealed] to the attached
     connection, byte-identical to the batch pipeline. *)
  List.iter (fun f -> f ()) !parked;
  let sealed = expect_sealed "sealed on step" (Server.step srv ~now:1000.0) in
  check_oracle "deferred seal" trace sealed;
  check Alcotest.string "final state" "sealed"
    (session_view srv "s").Server.v_state

(* The same seal on a real analysis domain: while the derivation runs,
   the engine keeps answering other connections — the whole point of
   taking the seal off the loop. *)
let test_server_seal_async_serves_meanwhile () =
  let trace = Lazy.force pipe_trace in
  let lines = Trace.to_lines trace in
  let total = List.length lines in
  let spawned = ref [] in
  let srv =
    Server.create ~runner:(fun f -> spawned := Pool.spawn f :: !spawned) ()
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun j -> ignore (Pool.await j)) !spawned)
    (fun () ->
      let cid, _ = connect srv ~now:0.0 "big" in
      stream_all srv ~now:0.0 cid ~start:0 lines;
      expect_silent "seal accepted"
        (send srv ~now:0.0 cid (Proto.Seal { rows = total }));
      check Alcotest.string "sealing meanwhile" "sealing"
        (session_view srv "big").Server.v_state;
      (* A second client is served while the domain grinds. *)
      let other, outs = Server.accept srv ~now:0.0 in
      expect_silent "accept" outs;
      let pings = ref 0 in
      let rec wait n =
        if n = 0 then Alcotest.fail "seal never completed"
        else begin
          (match
             only_send "ping while sealing" (send srv ~now:0.0 other Proto.Ping)
           with
          | _, Proto.Pong -> incr pings
          | _ -> Alcotest.fail "expected Pong");
          match Server.step srv ~now:0.0 with
          | [] ->
              Unix.sleepf 0.002;
              wait (n - 1)
          | outs -> expect_sealed "sealed" outs
        end
      in
      let sealed = wait 5000 in
      check_oracle "async seal" trace sealed;
      check Alcotest.bool "pings served during the seal" true (!pings >= 1))

(* ---- Rule subscriptions ------------------------------------------- *)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let field_int json key =
  let needle = "\"" ^ key ^ "\":" in
  match find_sub json needle with
  | None -> Alcotest.failf "field %s missing in %s" key json
  | Some i ->
      let start = i + String.length needle in
      let j = ref start in
      while !j < String.length json && json.[!j] >= '0' && json.[!j] <= '9' do
        incr j
      done;
      int_of_string (String.sub json start (!j - start))

(* The tail of a push — or of a stream-query reply — from the "rules"
   key on: both end with ["rules":<array>,"violations":<array>}], so
   equality of this suffix is byte-identity of the mined report. (The
   ["push":"rules"] marker never matches: the needle includes the
   colon.) *)
let rules_suffix json =
  match find_sub json {|"rules":|} with
  | Some i -> String.sub json i (String.length json - i)
  | None -> Alcotest.failf "no rules field in %s" json

(* The subscription oracle: every pushed delta must equal — byte for
   byte — what a [stream] query at the same watermark answers, and what
   the batch pipeline mines from that exact event prefix. *)
let test_server_subscription_push () =
  let trace = Lazy.force pipe_trace in
  let lines = Trace.to_lines trace in
  let total = List.length lines in
  let n_layouts = List.length trace.Trace.layouts in
  let cfg =
    {
      Server.default_config with
      sub_debounce_events = 64;
      sub_min_interval = 0.;
    }
  in
  let srv = Server.create ~config:cfg () in
  let now = 0.0 in
  let cid, _ = connect srv ~now "s" in
  (* Subscribing to a fresh session answers an empty snapshot push. *)
  (match only_send "subscribe" (send srv ~now cid Proto.Subscribe) with
  | _, Proto.Info { json } ->
      check Alcotest.bool "snapshot is a push" true
        (contains json {|"push":"rules"|});
      check Alcotest.string "empty snapshot" {|"rules":[],"violations":[]}|}
        (rules_suffix json)
  | _ -> Alcotest.fail "expected the subscription snapshot push");
  let pushes = ref 0 in
  let cursor = ref 0 in
  List.iter
    (fun b ->
      send_flow srv ~now cid ~start:!cursor b;
      cursor := !cursor + List.length b;
      List.iter
        (function
          | Server.Send (c, Proto.Info { json })
            when c = cid && contains json {|"push":"rules"|} ->
              incr pushes;
              let events = field_int json "events" in
              let accepted = field_int json "accepted_rows" in
              check Alcotest.int "push watermark is consistent"
                (accepted - n_layouts) events;
              check Alcotest.bool "a delta push is not empty" true
                (not (contains json {|"added":[],"removed":[]|}));
              (* No rows intervened, so the query freezes the very same
                 prefix the push did. *)
              (match
                 only_send "stream query at the push watermark"
                   (send srv ~now cid (Proto.Query Proto.Stream_rules))
               with
              | _, Proto.Info { json = qjson } ->
                  check Alcotest.int "query at the same watermark" events
                    (field_int qjson "events");
                  check Alcotest.string "push equals stream query"
                    (rules_suffix qjson) (rules_suffix json)
              | _ -> Alcotest.fail "expected Info for the stream query");
              let rules, violations = prefix_ref trace events in
              check Alcotest.string "push equals the batch prefix"
                ({|"rules":|} ^ rules ^ {|,"violations":|} ^ violations ^ "}")
                (rules_suffix json)
          | _ -> Alcotest.fail "unexpected non-push output during streaming")
        (Server.step srv ~now))
    (batches 100 lines);
  check Alcotest.bool "at least one delta push fired" true (!pushes >= 1);
  (* Sealing pushes the final delta to the subscriber before answering
     [Sealed] — and the two agree byte for byte. *)
  match send srv ~now cid (Proto.Seal { rows = total }) with
  | [
      Server.Send (_, Proto.Info { json });
      Server.Send (_, Proto.Sealed { events; rules; violations });
    ] ->
      check Alcotest.bool "final push is sealed" true
        (contains json {|"state":"sealed"|});
      check Alcotest.string "final push equals the sealed report"
        ({|"rules":|} ^ rules ^ {|,"violations":|} ^ violations ^ "}")
        (rules_suffix json);
      check_oracle "subscribed seal" trace (events, rules, violations)
  | _ -> Alcotest.fail "expected the final push then Sealed"

(* ---- Chaos matrix ------------------------------------------------- *)

let chaos_pairs = [| ("pipe", "device"); ("device", "pipe"); ("fs_inod", "pipe") |]

let run_chaos ?transport fault seed =
  let workloads = chaos_pairs.((seed - 1) mod Array.length chaos_pairs) in
  if fault = Chaos.Kill then begin
    let root = temp_dir "serve_chaos" in
    Fun.protect
      ~finally:(fun () -> rm_rf root)
      (fun () -> Chaos.run ~seed ~workloads ~durable_root:root ?transport fault)
  end
  else Chaos.run ~seed ~workloads ?transport fault

let assert_evidence fault (o : Chaos.outcome) =
  let nonzero label n =
    check Alcotest.bool
      (Printf.sprintf "%s: %s > 0" (Chaos.fault_name fault) label)
      true (n > 0)
  in
  nonzero "frames" o.o_frames_sent;
  match fault with
  | Chaos.Drop ->
      nonzero "faults" o.o_faults_injected;
      nonzero "nacks or resends" (o.o_nacks + o.o_rows_resent)
  | Chaos.Delay -> nonzero "faults" o.o_faults_injected
  | Chaos.Garble ->
      nonzero "garbled closes" o.o_garbled;
      nonzero "reconnects" o.o_reconnects
  | Chaos.Kill ->
      nonzero "session failures" o.o_session_failures;
      nonzero "reconnects" o.o_reconnects;
      nonzero "backoff retry-afters" o.o_retry_afters
  | Chaos.Reconnect_storm -> nonzero "supersedes" o.o_supersedes
  | Chaos.Slowloris -> nonzero "idle closes" o.o_idle_closes

let test_chaos ?transport fault () =
  for seed = 1 to n_seeds do
    let o = run_chaos ?transport fault seed in
    assert_evidence fault o
  done

let test_chaos_kill_requires_journal () =
  match Chaos.run Chaos.Kill with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Kill without a durable root must be rejected"

(* ---- Real sockets, spawned daemon --------------------------------- *)

(* The daemon runs as the real `lockdoc serve` binary: forking the test
   image is off the table once any analysis domain has been spawned
   (OCaml forbids [Unix.fork] after domain creation, and both the
   async-seal test above and the daemon's own off-loop sealing create
   domains), and exec'ing the CLI makes these end-to-end anyway. *)
let exe =
  (* Relative to the test runner, not the cwd: `dune runtest` and a bare
     `dune exec test/test_serve.exe` run from different directories. *)
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name "bin/lockdoc.exe")

let spawn_daemon ~stdout args =
  Unix.create_process exe
    (Array.of_list ((exe :: "serve" :: args)))
    Unix.stdin stdout Unix.stderr

let test_socket_integration () =
  let dir = temp_dir "serve_sock" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "lockdoc.sock" in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid = spawn_daemon ~stdout:devnull [ "--socket"; socket ] in
      Unix.close devnull;
      let pipe = Lazy.force pipe_trace in
      let device = Lazy.force device_trace in
      let sealed_a =
        Sockserv.feed ~socket ~session:"a" (Trace.to_lines pipe)
      in
      let e, r, v = batch_ref pipe in
      check Alcotest.int "a: events" e sealed_a.Sockserv.events;
      check Alcotest.string "a: rules" r sealed_a.Sockserv.rules;
      check Alcotest.string "a: violations" v sealed_a.Sockserv.violations;
      let sealed_b =
        Sockserv.feed ~socket ~session:"b" (Trace.to_lines device)
      in
      let e, r, v = batch_ref device in
      check Alcotest.int "b: events" e sealed_b.Sockserv.events;
      check Alcotest.string "b: rules" r sealed_b.Sockserv.rules;
      check Alcotest.string "b: violations" v sealed_b.Sockserv.violations;
      (match Sockserv.request ~socket (Proto.Query Proto.Status) with
      | Proto.Info { json } ->
          check Alcotest.bool "status mentions both sessions" true
            (contains json "\"a\"" && contains json "\"b\"")
      | _ -> Alcotest.fail "expected Info from status query");
      (match Sockserv.request ~socket Proto.Shutdown with
      | Proto.Closing _ -> ()
      | _ -> Alcotest.fail "expected Closing from shutdown");
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "daemon did not exit cleanly");
      check Alcotest.bool "socket unlinked" false (Sys.file_exists socket))

(* The same daemon listening on TCP too: both transports feed the one
   engine, sealed results are byte-identical across them, and follow
   mode sees the pushed rule updates over the network. *)
let test_tcp_integration () =
  let dir = temp_dir "serve_tcp" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "lockdoc.sock" in
      let pr, pw = Unix.pipe () in
      let pid =
        spawn_daemon ~stdout:pw [ "--socket"; socket; "--tcp"; "127.0.0.1:0" ]
      in
      Unix.close pw;
      (* The daemon announces the ephemeral port it actually bound on
         stdout — exactly what a human scripting `--tcp host:0` reads. *)
      let ic = Unix.in_channel_of_descr pr in
      let rec read_port () =
        let line = input_line ic in
        match find_sub line "tcp port " with
        | Some i ->
            let tail = String.sub line (i + 9) (String.length line - i - 9) in
            int_of_string (String.trim tail)
        | None -> read_port ()
      in
      let port = read_port () in
      let tcp = ("127.0.0.1", port) in
      let pipe = Lazy.force pipe_trace in
      let device = Lazy.force device_trace in
      (* One session over TCP, one over the Unix socket: the sealed
         reports must not depend on the transport. *)
      let sealed_t =
        Sockserv.feed ~tcp ~socket ~session:"t" (Trace.to_lines pipe)
      in
      let sealed_u =
        Sockserv.feed ~socket ~session:"u" (Trace.to_lines pipe)
      in
      let e, r, v = batch_ref pipe in
      check Alcotest.int "tcp: events" e sealed_t.Sockserv.events;
      check Alcotest.string "tcp: rules" r sealed_t.Sockserv.rules;
      check Alcotest.string "tcp: violations" v sealed_t.Sockserv.violations;
      check Alcotest.bool "transports byte-identical" true
        (sealed_t = sealed_u);
      (* Follow mode over TCP: the snapshot push, then the final
         sealed push agreeing with the batch report. *)
      let pushes = ref [] in
      let sealed_d =
        Sockserv.feed ~tcp
          ~follow:(fun j -> pushes := j :: !pushes)
          ~socket ~session:"d" (Trace.to_lines device)
      in
      let e, r, v = batch_ref device in
      check Alcotest.int "d: events" e sealed_d.Sockserv.events;
      check Alcotest.string "d: rules" r sealed_d.Sockserv.rules;
      check Alcotest.bool "snapshot and sealed pushes arrived" true
        (List.length !pushes >= 2);
      (match !pushes with
      | last :: _ ->
          check Alcotest.bool "final push is sealed" true
            (contains last {|"state":"sealed"|});
          check Alcotest.string "final push equals the batch report"
            ({|"rules":|} ^ r ^ {|,"violations":|} ^ v ^ "}")
            (rules_suffix last)
      | [] -> Alcotest.fail "follow produced no pushes");
      (match Sockserv.request ~tcp ~socket (Proto.Query Proto.Status) with
      | Proto.Info { json } ->
          check Alcotest.bool "status over tcp lists the sessions" true
            (contains json {|"t"|} && contains json {|"u"|}
            && contains json {|"d"|})
      | _ -> Alcotest.fail "expected Info from status query");
      (match Sockserv.request ~tcp ~socket Proto.Shutdown with
      | Proto.Closing _ -> ()
      | _ -> Alcotest.fail "expected Closing from shutdown");
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "daemon did not exit cleanly");
      close_in ic;
      check Alcotest.bool "socket unlinked" false (Sys.file_exists socket))

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          Alcotest.test_case "round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "chunked feeds" `Quick test_frame_chunked;
          Alcotest.test_case "corrupt latches" `Quick test_frame_corrupt_latches;
          Alcotest.test_case "length ceiling" `Quick test_frame_length_ceiling;
        ] );
      ( "frame-vs-wal",
        [
          Alcotest.test_case "same records" `Quick test_frame_wal_differential;
          Alcotest.test_case "every torn tail" `Quick test_frame_wal_torn_tail;
          Alcotest.test_case "bit flip" `Quick test_frame_wal_bitflip;
        ] );
      ( "proto",
        [
          Alcotest.test_case "round trips" `Quick test_proto_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick
            test_proto_rejects_malformed;
        ] );
      ( "server",
        [
          Alcotest.test_case "seal matches batch" `Quick test_server_seal_oracle;
          Alcotest.test_case "nack and idempotency" `Quick
            test_server_nack_and_idempotency;
          Alcotest.test_case "seal count guard" `Quick
            test_server_seal_count_guard;
          Alcotest.test_case "backpressure isolation" `Quick
            test_server_backpressure_isolation;
          Alcotest.test_case "garble kills only the connection" `Quick
            test_server_garbled_connection_session_survives;
          Alcotest.test_case "idle timeout and gc" `Quick
            test_server_idle_timeout_and_gc;
          Alcotest.test_case "supersede" `Quick test_server_supersede;
          Alcotest.test_case "crash, backoff, durable recovery" `Quick
            test_server_crash_backoff_durable_recovery;
          Alcotest.test_case "permanent failure" `Quick
            test_server_permanent_failure;
          Alcotest.test_case "rejections" `Quick test_server_rejections;
          Alcotest.test_case "ping, query, bye, shutdown" `Quick
            test_server_ping_query_bye_shutdown;
          Alcotest.test_case "stream query answers the live prefix" `Quick
            test_server_stream_query;
          Alcotest.test_case "sealing interim state" `Quick
            test_server_sealing_state_machine;
          Alcotest.test_case "async seal serves meanwhile" `Quick
            test_server_seal_async_serves_meanwhile;
          Alcotest.test_case "subscription pushes match the watermark" `Quick
            test_server_subscription_push;
        ] );
      ( "chaos",
        Alcotest.test_case "kill requires journal" `Quick
          test_chaos_kill_requires_journal
        :: List.map
             (fun f ->
               Alcotest.test_case
                 (Printf.sprintf "%s (%d seed%s)" (Chaos.fault_name f) n_seeds
                    (if n_seeds = 1 then "" else "s"))
                 `Slow (test_chaos f))
             Chaos.all_faults );
      ( "chaos-tcp",
        List.map
          (fun f ->
            Alcotest.test_case
              (Printf.sprintf "%s (%d seed%s)" (Chaos.fault_name f) n_seeds
                 (if n_seeds = 1 then "" else "s"))
              `Slow
              (test_chaos ~transport:`Tcp f))
          Chaos.all_faults );
      ( "socket",
        [
          Alcotest.test_case "spawned daemon end to end" `Slow
            test_socket_integration;
          Alcotest.test_case "tcp transport end to end" `Slow
            test_tcp_integration;
        ] );
    ]
