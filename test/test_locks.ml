(* Exhaustive tests of the lock layer: every primitive family, the trace
   events they emit, IRQ/BH masking variants, scoped helpers, and the
   semantics checks that guard against simulator misuse. *)

module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Kernel = Lockdoc_ksim.Kernel
module Lock = Lockdoc_ksim.Lock
module Memory = Lockdoc_ksim.Memory

let check = Alcotest.check

let tiny =
  Lockdoc_trace.Layout.make ~name:"tiny"
    [ ("t_a", 8, Lockdoc_trace.Layout.Data);
      ("t_lock", 4, Lockdoc_trace.Layout.Lock) ]

let quiet = { Kernel.default_config with Kernel.hardirq_rate = 0.; softirq_rate = 0. }

(* Run one task and return its trace. *)
let in_kernel body =
  let trace, _ =
    Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
        Kernel.spawn "t" body)
  in
  trace

let count_acquires trace ptr =
  Trace.count trace (function
    | Event.Lock_acquire { lock_ptr; _ } -> lock_ptr = ptr
    | _ -> false)

let count_releases trace ptr =
  Trace.count trace (function
    | Event.Lock_release { lock_ptr; _ } -> lock_ptr = ptr
    | _ -> false)

let shared_acquires trace ptr =
  Trace.count trace (function
    | Event.Lock_acquire { lock_ptr; side = Event.Shared; _ } -> lock_ptr = ptr
    | _ -> false)

(* {2 Events emitted per primitive} *)

let test_spinlock_events () =
  let l = Lock.static ~kind:Event.Spinlock "ev_spin" in
  let trace =
    in_kernel (fun () ->
        Lock.spin_lock l;
        Lock.spin_unlock l;
        Lock.spin_lock_irq l;
        Lock.spin_unlock_irq l;
        Lock.spin_lock_bh l;
        Lock.spin_unlock_bh l)
  in
  check Alcotest.int "three acquires" 3 (count_acquires trace (Lock.ptr l));
  check Alcotest.int "three releases" 3 (count_releases trace (Lock.ptr l))

let test_trylock () =
  let l = Lock.static ~kind:Event.Spinlock "ev_try" in
  let trace =
    in_kernel (fun () ->
        check Alcotest.bool "free trylock succeeds" true (Lock.spin_trylock l);
        (* held by self: trylock must fail without emitting an acquire *)
        check Alcotest.bool "held trylock fails" false (Lock.spin_trylock l);
        Lock.spin_unlock l)
  in
  check Alcotest.int "one acquire only" 1 (count_acquires trace (Lock.ptr l))

let test_rwlock_sides () =
  let l = Lock.static ~kind:Event.Rwlock "ev_rw" in
  let trace =
    in_kernel (fun () ->
        Lock.read_lock l;
        Lock.read_unlock l;
        Lock.write_lock l;
        Lock.write_unlock l)
  in
  check Alcotest.int "total acquires" 2 (count_acquires trace (Lock.ptr l));
  check Alcotest.int "one shared acquire" 1 (shared_acquires trace (Lock.ptr l))

let test_semaphore_counting () =
  let l = Lock.static ~kind:Event.Semaphore "ev_sem" in
  let trace =
    in_kernel (fun () ->
        Lock.down l;
        Lock.up l;
        Lock.down l;
        Lock.up l)
  in
  check Alcotest.int "two downs" 2 (count_acquires trace (Lock.ptr l))

let test_rwsem_downgrade_events () =
  let l = Lock.static ~kind:Event.Rwsem "ev_rwsem" in
  let trace =
    in_kernel (fun () ->
        Lock.down_write l;
        Lock.downgrade_write l;
        Lock.up_read l)
  in
  (* down_write + the shared re-acquire of the downgrade *)
  check Alcotest.int "acquires" 2 (count_acquires trace (Lock.ptr l));
  check Alcotest.int "shared acquires" 1 (shared_acquires trace (Lock.ptr l));
  check Alcotest.int "releases" 2 (count_releases trace (Lock.ptr l))

let test_rcu_reentrant () =
  let trace =
    in_kernel (fun () ->
        Lock.rcu_read_lock ();
        Lock.rcu_read_lock ();
        Lock.rcu_read_unlock ();
        Lock.rcu_read_unlock ())
  in
  check Alcotest.int "nested rcu sections" 2
    (count_acquires trace (Lock.ptr Lock.rcu))

let test_seqlock_read_emits_shared () =
  let l = Lock.static ~kind:Event.Seqlock "ev_seq" in
  let trace =
    in_kernel (fun () ->
        let v = Lock.read_seq_section l (fun () -> 5) in
        check Alcotest.int "value" 5 v)
  in
  check Alcotest.int "one shared section" 1 (shared_acquires trace (Lock.ptr l))

(* {2 Scoped helpers and exception safety} *)

exception Boom

let test_with_spin_exception_safe () =
  let l = Lock.static ~kind:Event.Spinlock "ev_scoped" in
  let trace =
    in_kernel (fun () ->
        (try Lock.with_spin l (fun () -> raise Boom) with Boom -> ());
        (* The lock must have been released: reacquiring succeeds. *)
        Lock.with_spin l (fun () -> ()))
  in
  check Alcotest.int "balanced releases" 2 (count_releases trace (Lock.ptr l))

let test_with_helpers () =
  let m = Lock.static ~kind:Event.Mutex "ev_wm" in
  let rw = Lock.static ~kind:Event.Rwsem "ev_wrw" in
  let trace =
    in_kernel (fun () ->
        check Alcotest.int "with_mutex result" 3 (Lock.with_mutex m (fun () -> 3));
        check Alcotest.int "with_read result" 4 (Lock.with_read rw (fun () -> 4));
        check Alcotest.int "with_write result" 5 (Lock.with_write rw (fun () -> 5));
        check Alcotest.int "with_rcu result" 6 (Lock.with_rcu (fun () -> 6)))
  in
  check Alcotest.int "mutex balanced" 1 (count_releases trace (Lock.ptr m));
  check Alcotest.int "rwsem balanced" 2 (count_releases trace (Lock.ptr rw))

(* {2 Error conditions per family} *)

let expect_lock_error body =
  ignore
    (Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
         Kernel.spawn "err" (fun () ->
             try
               body ();
               Alcotest.fail "expected Lock_error"
             with Lock.Lock_error _ -> ())))

let test_error_conditions () =
  expect_lock_error (fun () ->
      let l = Lock.static ~kind:Event.Rwlock "err_rw" in
      Lock.read_unlock l);
  expect_lock_error (fun () ->
      let l = Lock.static ~kind:Event.Rwsem "err_rwsem" in
      Lock.up_read l);
  expect_lock_error (fun () ->
      let l = Lock.static ~kind:Event.Rwsem "err_rwsem2" in
      Lock.up_write l);
  expect_lock_error (fun () ->
      let l = Lock.static ~kind:Event.Mutex "err_m" in
      Lock.mutex_unlock l);
  expect_lock_error (fun () ->
      let l = Lock.static ~kind:Event.Mutex "err_m2" in
      Lock.mutex_lock l;
      Lock.mutex_lock l);
  expect_lock_error (fun () -> Lock.rcu_read_unlock ())

(* {2 State reset across runs} *)

let test_static_state_reset () =
  let l = Lock.static ~kind:Event.Mutex "reset_m" in
  (* First run leaves the lock held (a task dies with it). *)
  ignore
    (Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
         Kernel.spawn "leaker" (fun () -> Lock.mutex_lock l)));
  (* Second run must see it free again after the boot hook reset. *)
  ignore
    (Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
         Kernel.spawn "checker" (fun () ->
             Lock.mutex_lock l;
             Lock.mutex_unlock l)))

(* {2 Embedded lock addresses} *)

let test_embedded_lock_address () =
  ignore
    (Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
         Kernel.spawn "embed" (fun () ->
             let inst = Memory.alloc tiny in
             let l = Lock.embedded ~kind:Event.Spinlock inst "t_lock" in
             check Alcotest.int "address = member address"
               (Memory.member_ptr inst "t_lock")
               (Lock.ptr l);
             check Alcotest.string "named after the member" "t_lock" (Lock.name l);
             Memory.free inst)))

(* {2 call_rcu ordering} *)

let test_call_rcu_fifo () =
  ignore
    (Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
         Kernel.spawn "rcu-fifo" (fun () ->
             let order = ref [] in
             Lock.rcu_read_lock ();
             Lock.call_rcu (fun () -> order := 1 :: !order);
             Lock.call_rcu (fun () -> order := 2 :: !order);
             Lock.rcu_read_unlock ();
             check (Alcotest.list Alcotest.int) "FIFO callback order" [ 2; 1 ]
               !order)))

let test_call_rcu_nested_readers () =
  ignore
    (Kernel.run ~config:quiet ~layouts:[ tiny ] (fun () ->
         Kernel.spawn "rcu-nest" (fun () ->
             let freed = ref false in
             Lock.rcu_read_lock ();
             Lock.rcu_read_lock ();
             Lock.call_rcu (fun () -> freed := true);
             Lock.rcu_read_unlock ();
             check Alcotest.bool "still deferred under the outer section"
               false !freed;
             Lock.rcu_read_unlock ();
             check Alcotest.bool "freed after the last reader" true !freed)))

let () =
  Alcotest.run "locks"
    [
      ( "events",
        [
          Alcotest.test_case "spinlock variants" `Quick test_spinlock_events;
          Alcotest.test_case "trylock" `Quick test_trylock;
          Alcotest.test_case "rwlock sides" `Quick test_rwlock_sides;
          Alcotest.test_case "semaphore" `Quick test_semaphore_counting;
          Alcotest.test_case "rwsem downgrade" `Quick test_rwsem_downgrade_events;
          Alcotest.test_case "rcu reentrant" `Quick test_rcu_reentrant;
          Alcotest.test_case "seqlock shared section" `Quick
            test_seqlock_read_emits_shared;
        ] );
      ( "scoped",
        [
          Alcotest.test_case "exception safety" `Quick test_with_spin_exception_safe;
          Alcotest.test_case "with_* helpers" `Quick test_with_helpers;
        ] );
      ( "errors", [ Alcotest.test_case "per family" `Quick test_error_conditions ] );
      ( "state",
        [
          Alcotest.test_case "reset across runs" `Quick test_static_state_reset;
          Alcotest.test_case "embedded address" `Quick test_embedded_lock_address;
        ] );
      ( "rcu",
        [
          Alcotest.test_case "callback order" `Quick test_call_rcu_fifo;
          Alcotest.test_case "nested readers" `Quick test_call_rcu_nested_readers;
        ] );
    ]
