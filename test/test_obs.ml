(* Unit and property tests for the observability layer: domain-safe
   counters/histograms, span nesting, the JSON codec, the wall/cpu
   clock split, and — the load-bearing guarantee — that enabling
   metrics changes no analysis output bytes. *)

module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json
module Run = Lockdoc_ksim.Run
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Every test owns the global registry state for its duration. *)
let fresh ?(enabled = true) () =
  Obs.reset ();
  Obs.set_enabled enabled

(* {2 Counters} *)

let test_counter_basic () =
  fresh ();
  let c = Obs.counter "t.basic" in
  Obs.incr c;
  Obs.add c 41;
  check Alcotest.int "value" 42 (Obs.counter_value c);
  let c' = Obs.counter "t.basic" in
  Obs.incr c';
  check Alcotest.int "same handle by name" 43 (Obs.counter_value c)

let test_counter_disabled () =
  fresh ~enabled:false ();
  let c = Obs.counter "t.disabled" in
  Obs.incr c;
  Obs.add c 100;
  check Alcotest.int "no recording when disabled" 0 (Obs.counter_value c)

let test_counter_domains () =
  fresh ();
  let c = Obs.counter "t.domains" in
  let per_domain = 10_000 in
  let worker () = for _ = 1 to per_domain do Obs.incr c done in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "no lost increments across 4 domains" (4 * per_domain)
    (Obs.counter_value c)

(* {2 Gauges} *)

let test_gauge () =
  fresh ();
  let g = Obs.gauge "t.gauge" in
  Obs.set_gauge g 2.5;
  check (Alcotest.float 0.) "set/get" 2.5 (Obs.gauge_value g);
  Obs.set_enabled false;
  Obs.set_gauge g 9.;
  check (Alcotest.float 0.) "disabled set ignored" 2.5 (Obs.gauge_value g)

(* {2 Histograms} *)

let test_histogram_buckets () =
  fresh ();
  let h = Obs.histogram ~buckets:[| 1.; 10.; 100. |] "t.hist" in
  List.iter (Obs.observe h) [ 0.5; 1.; 5.; 99.; 1000. ];
  check Alcotest.int "count" 5 (Obs.histogram_count h);
  check (Alcotest.float 1e-9) "sum" 1105.5 (Obs.histogram_sum h);
  let snap = Obs.snapshot () in
  let hs = List.assoc "t.hist" snap.Obs.sn_histograms in
  (* 0.5 and 1.0 land in [<= 1], 5 in [<= 10], 99 in [<= 100],
     1000 overflows. *)
  check (Alcotest.array Alcotest.int) "bucket counts" [| 2; 1; 1; 1 |]
    hs.Obs.hs_counts

let test_histogram_increasing () =
  fresh ();
  Alcotest.check_raises "non-increasing buckets rejected"
    (Invalid_argument "Obs.histogram t.bad: buckets must be strictly increasing")
    (fun () -> ignore (Obs.histogram ~buckets:[| 1.; 1. |] "t.bad"))

let test_histogram_domains () =
  fresh ();
  let h = Obs.histogram "t.hist.domains" in
  let per_domain = 1_000 in
  let worker () =
    for i = 1 to per_domain do Obs.observe h (float_of_int i) done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "total observations" (4 * per_domain)
    (Obs.histogram_count h);
  (* Integer-valued floats below 2^53: the CAS-loop sum is exact in any
     interleaving. *)
  let expected = 4. *. float_of_int (per_domain * (per_domain + 1) / 2) in
  check (Alcotest.float 0.) "exact concurrent sum" expected
    (Obs.histogram_sum h)

let prop_histogram_counts_observations =
  QCheck.Test.make ~name:"histogram count = observations, any values"
    ~count:100
    QCheck.(list (float_bound_exclusive 20000.))
    (fun xs ->
      fresh ();
      let h = Obs.histogram "t.hist.prop" in
      List.iter (Obs.observe h) xs;
      let snap = Obs.snapshot () in
      let hs = List.assoc "t.hist.prop" snap.Obs.sn_histograms in
      hs.Obs.hs_count = List.length xs
      && Array.fold_left ( + ) 0 hs.Obs.hs_counts = List.length xs)

(* {2 Spans} *)

let test_span_nesting () =
  fresh ();
  check (Alcotest.list Alcotest.string) "empty outside spans" []
    (Obs.Span.current_path ());
  Obs.Span.time "outer" (fun () ->
      check (Alcotest.list Alcotest.string) "inside outer" [ "outer" ]
        (Obs.Span.current_path ());
      Obs.Span.time "inner" (fun () ->
          check (Alcotest.list Alcotest.string) "nested path"
            [ "outer/inner"; "outer" ]
            (Obs.Span.current_path ())));
  check (Alcotest.list Alcotest.string) "popped on exit" []
    (Obs.Span.current_path ());
  let snap = Obs.snapshot () in
  check Alcotest.bool "outer recorded" true
    (Obs.find_span snap "outer" <> None);
  check Alcotest.bool "outer/inner recorded" true
    (Obs.find_span snap "outer/inner" <> None)

let test_span_pops_on_exception () =
  fresh ();
  (try Obs.Span.time "boom" (fun () -> failwith "x") with Failure _ -> ());
  check (Alcotest.list Alcotest.string) "stack clean after raise" []
    (Obs.Span.current_path ())

let test_span_disabled_records_nothing () =
  fresh ~enabled:false ();
  let (), d = Obs.Span.timed "t.off" (fun () -> ()) in
  check Alcotest.bool "duration still measured" true (d.Obs.Clock.wall >= 0.);
  Obs.set_enabled true;
  let snap = Obs.snapshot () in
  check Alcotest.bool "nothing recorded while disabled" true
    (Obs.find_span snap "t.off" = None)

let test_span_record_external () =
  fresh ();
  Obs.Span.record "t.ext" { Obs.Clock.wall = 1.5; cpu = 0.5 };
  Obs.Span.record "t.ext" { Obs.Clock.wall = 0.5; cpu = 0.25 };
  match Obs.find_span (Obs.snapshot ()) "t.ext" with
  | None -> Alcotest.fail "span missing"
  | Some sp ->
      check Alcotest.int "count" 2 sp.Obs.sp_count;
      check (Alcotest.float 1e-9) "wall" 2. sp.Obs.sp_wall;
      check (Alcotest.float 1e-9) "cpu" 0.75 sp.Obs.sp_cpu

(* {2 Clock} *)

let test_clock_wall_vs_cpu () =
  (* Sleeping burns wall time but (almost) no CPU: the two clocks must
     not be the same thing. This is the regression test for the
     Sys.time-as-wall-clock bug. *)
  let (), d = Obs.Clock.timed (fun () -> Unix.sleepf 0.05) in
  check Alcotest.bool
    (Printf.sprintf "wall >= 40ms (got %.1fms)" (1000. *. d.Obs.Clock.wall))
    true (d.Obs.Clock.wall >= 0.04);
  check Alcotest.bool
    (Printf.sprintf "cpu <= 40ms (got %.1fms)" (1000. *. d.Obs.Clock.cpu))
    true (d.Obs.Clock.cpu <= 0.04)

(* {2 JSON codec} *)

let test_json_round_trip () =
  let j =
    Json.O
      [
        ("null", Json.Null);
        ("bool", Json.B true);
        ("int", Json.I (-42));
        ("float", Json.F 1.5);
        ("big", Json.I max_int);
        ("str", Json.S "a\"b\\c\nd\te\x01");
        ("list", Json.L [ Json.I 1; Json.F 2.5; Json.S "x" ]);
        ("nested", Json.O [ ("k", Json.L [ Json.O [] ]) ]);
      ]
  in
  let s = Json.to_string j in
  match Json.of_string s with
  | Error e -> Alcotest.fail ("re-parse failed: " ^ e)
  | Ok j' ->
      check Alcotest.bool "round-trip equal" true (Json.equal j j');
      check Alcotest.string "stable encoding" s (Json.to_string j')

let prop_json_int_round_trip =
  QCheck.Test.make ~name:"json int round-trip" ~count:200 QCheck.int (fun i ->
      match Json.of_string (Json.to_string (Json.I i)) with
      | Ok (Json.I i') -> i = i'
      | _ -> false)

let prop_json_string_round_trip =
  QCheck.Test.make ~name:"json string round-trip" ~count:200
    QCheck.printable_string (fun s ->
      match Json.of_string (Json.to_string (Json.S s)) with
      | Ok (Json.S s') -> s = s'
      | _ -> false)

let test_json_rejects_junk () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted junk %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let test_snapshot_json_shape () =
  fresh ();
  Obs.incr (Obs.counter "t.snap.counter");
  Obs.observe (Obs.histogram ~buckets:[| 1. |] "t.snap.hist") 0.5;
  Obs.Span.time "t.snap.span" (fun () -> ());
  let s = Obs.to_json_string () in
  match Json.of_string s with
  | Error e -> Alcotest.fail ("snapshot not valid JSON: " ^ e)
  | Ok j ->
      let counter =
        Option.bind (Json.member "counters" j) (Json.member "t.snap.counter")
      in
      check Alcotest.bool "counter present" true (counter = Some (Json.I 1));
      let hist_count =
        Option.bind
          (Option.bind (Json.member "histograms" j) (Json.member "t.snap.hist"))
          (Json.member "count")
      in
      check Alcotest.bool "histogram count present" true
        (hist_count = Some (Json.I 1));
      let span =
        Option.bind (Json.member "spans" j) (Json.member "t.snap.span")
      in
      check Alcotest.bool "span present" true (span <> None)

let test_write_file () =
  fresh ();
  Obs.incr (Obs.counter "t.write");
  let path = Filename.temp_file "lockdoc_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.write path;
      let s = In_channel.with_open_bin path In_channel.input_all in
      match Json.of_string s with
      | Error e -> Alcotest.fail ("written file not valid JSON: " ^ e)
      | Ok j ->
          check Alcotest.bool "written counter readable" true
            (Option.bind (Json.member "counters" j) (Json.member "t.write")
            = Some (Json.I 1)))

(* {2 Reset} *)

let test_reset () =
  fresh ();
  let c = Obs.counter "t.reset" in
  Obs.add c 7;
  Obs.Span.time "t.reset.span" (fun () -> ());
  Obs.reset ();
  check Alcotest.int "counter zeroed" 0 (Obs.counter_value c);
  check Alcotest.bool "spans dropped" true
    (Obs.find_span (Obs.snapshot ()) "t.reset.span" = None)

(* {2 Metrics are byte-invisible to analysis output} *)

(* Render the analysis pipeline exactly as the CLI/test_parallel do and
   require the bytes to be independent of the metrics switch. *)
let render_analysis trace =
  let store, stats = Import.run trace in
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_all ~jobs:2 dataset in
  let violations = Violation.find ~jobs:2 dataset mined in
  String.concat "\n"
    [
      Report.mined_to_json mined;
      Report.violations_to_json violations;
      string_of_int stats.Import.total_events;
      string_of_int (Import.anomaly_total stats);
    ]

let test_metrics_do_not_change_output () =
  let trace = Run.workload_trace ~seed:7 ~scale:2 "fs_inod" in
  Obs.reset ();
  Obs.set_enabled false;
  let off = render_analysis trace in
  Obs.set_enabled true;
  let on = render_analysis trace in
  Obs.set_enabled true;
  check Alcotest.string "identical bytes with metrics on" off on;
  (* And the run did actually record something. *)
  check Alcotest.bool "metrics recorded" true
    (match Obs.find_counter (Obs.snapshot ()) "import.events" with
    | Some n -> n > 0
    | None -> false)

let test_metrics_allowed_on_sealed_store () =
  let trace = Run.workload_trace ~seed:3 ~scale:1 "pipe" in
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  Lockdoc_db.Store.seal store;
  fresh ();
  (* Derivation on a sealed store with metrics enabled must not raise:
     metric recording mutates no store row. *)
  let mined = Derivator.derive_all ~jobs:2 dataset in
  check Alcotest.bool "derived on sealed store" true (mined <> [])

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "disabled" `Quick test_counter_disabled;
          Alcotest.test_case "merge across domains" `Quick test_counter_domains;
        ] );
      ("gauges", [ Alcotest.test_case "set/get" `Quick test_gauge ]);
      ( "histograms",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_buckets;
          Alcotest.test_case "rejects non-increasing" `Quick
            test_histogram_increasing;
          Alcotest.test_case "concurrent totals" `Quick test_histogram_domains;
          qtest prop_histogram_counts_observations;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "pops on exception" `Quick
            test_span_pops_on_exception;
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "external record" `Quick test_span_record_external;
        ] );
      ( "clock",
        [ Alcotest.test_case "wall vs cpu" `Quick test_clock_wall_vs_cpu ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "rejects junk" `Quick test_json_rejects_junk;
          qtest prop_json_int_round_trip;
          qtest prop_json_string_round_trip;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "json shape" `Quick test_snapshot_json_shape;
          Alcotest.test_case "write file" `Quick test_write_file;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "analysis bytes unchanged" `Quick
            test_metrics_do_not_change_output;
          Alcotest.test_case "recording on sealed store" `Quick
            test_metrics_allowed_on_sealed_store;
        ] );
    ]
