(* Tests for the trace substrate: source locations, type layouts, event
   serialisation and the trace container. *)

module Srcloc = Lockdoc_trace.Srcloc
module Layout = Lockdoc_trace.Layout
module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 Srcloc} *)

let test_srcloc_roundtrip () =
  let loc = Srcloc.make "fs/inode.c" 507 in
  check Alcotest.string "to_string" "fs/inode.c:507" (Srcloc.to_string loc);
  check Alcotest.bool "roundtrip" true
    (Srcloc.equal loc (Srcloc.of_string (Srcloc.to_string loc)))

let test_srcloc_ordering () =
  let a = Srcloc.make "a.c" 10 and b = Srcloc.make "a.c" 20 in
  check Alcotest.bool "line order" true (Srcloc.compare a b < 0);
  let c = Srcloc.make "b.c" 1 in
  check Alcotest.bool "file order" true (Srcloc.compare a c < 0)

let test_srcloc_malformed () =
  Alcotest.check_raises "no colon" (Failure "Srcloc.of_string: missing ':' in nope")
    (fun () -> ignore (Srcloc.of_string "nope"))

(* {2 Layout} *)

let example_layout =
  Layout.make ~name:"thing"
    [ ("a", 4, Layout.Data); ("lock", 4, Layout.Lock); ("n", 8, Layout.Atomic) ]

let test_layout_offsets () =
  check Alcotest.int "total size" 16 example_layout.Layout.ty_size;
  let m = Layout.find_member example_layout "lock" in
  check Alcotest.int "offset" 4 m.Layout.m_offset;
  check Alcotest.int "size" 4 m.Layout.m_size

let test_layout_member_at () =
  let name_at off =
    Option.map (fun m -> m.Layout.m_name) (Layout.member_at example_layout off)
  in
  check (Alcotest.option Alcotest.string) "first byte" (Some "a") (name_at 0);
  check (Alcotest.option Alcotest.string) "interior byte" (Some "a") (name_at 3);
  check (Alcotest.option Alcotest.string) "second member" (Some "lock") (name_at 4);
  check (Alcotest.option Alcotest.string) "last byte" (Some "n") (name_at 15);
  check (Alcotest.option Alcotest.string) "past the end" None (name_at 16)

let test_layout_data_members () =
  check (Alcotest.list Alcotest.string) "data members only" [ "a" ]
    (List.map (fun m -> m.Layout.m_name) (Layout.data_members example_layout))

let test_layout_roundtrip () =
  let s = Layout.to_string example_layout in
  let back = Layout.of_string s in
  check Alcotest.string "name" "thing" back.Layout.ty_name;
  check Alcotest.int "size" 16 back.Layout.ty_size;
  check Alcotest.int "members" 3 (List.length back.Layout.members);
  check Alcotest.string "reserialise" s (Layout.to_string back)

(* {2 Event} *)

let sample_events =
  [
    Event.Alloc { ptr = 0x1000; size = 64; data_type = "inode"; subclass = Some "ext4" };
    Event.Alloc { ptr = 0x2000; size = 32; data_type = "dentry"; subclass = None };
    Event.Free { ptr = 0x1000 };
    Event.Lock_acquire
      {
        lock_ptr = 0x10;
        kind = Event.Spinlock;
        side = Event.Exclusive;
        name = "i_lock";
        loc = Srcloc.make "fs/inode.c" 42;
      };
    Event.Lock_acquire
      {
        lock_ptr = 0x20;
        kind = Event.Rwsem;
        side = Event.Shared;
        name = "s_umount";
        loc = Srcloc.make "fs/super.c" 7;
      };
    Event.Lock_release { lock_ptr = 0x10; loc = Srcloc.make "fs/inode.c" 44 };
    Event.Mem_access
      { ptr = 0x1010; size = 8; kind = Event.Read; loc = Srcloc.make "fs/stat.c" 3 };
    Event.Mem_access
      { ptr = 0x1018; size = 4; kind = Event.Write; loc = Srcloc.make "fs/attr.c" 9 };
    Event.Fun_enter { fn = "iget_locked"; loc = Srcloc.make "fs/inode.c" 30 };
    Event.Fun_exit { fn = "iget_locked" };
    Event.Ctx_switch { pid = 3; kind = Event.Task };
    Event.Ctx_switch { pid = 1001; kind = Event.Hardirq };
    Event.Ctx_switch { pid = 2001; kind = Event.Softirq };
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      let back = Event.of_line (Event.to_line ev) in
      check Alcotest.bool (Event.to_line ev) true (Event.equal ev back))
    sample_events

let test_lock_kind_roundtrip () =
  List.iter
    (fun k ->
      check Alcotest.bool "kind roundtrip" true
        (Event.lock_kind_of_string (Event.lock_kind_to_string k) = k))
    [
      Event.Spinlock; Event.Rwlock; Event.Mutex; Event.Semaphore; Event.Rwsem;
      Event.Rcu; Event.Seqlock; Event.Pseudo;
    ]

let test_event_malformed () =
  Alcotest.check_raises "garbage line"
    (Failure "Event.of_line: malformed line: ???") (fun () ->
      ignore (Event.of_line "???"))

let event_gen =
  let open QCheck.Gen in
  let loc = map2 (fun f l -> Srcloc.make (Printf.sprintf "f%d.c" f) l) (int_bound 20) (int_bound 5000) in
  oneof
    [
      map2 (fun p s -> Event.Alloc { ptr = p; size = s + 1; data_type = "t"; subclass = None })
        (int_bound 100000) (int_bound 512);
      map (fun p -> Event.Free { ptr = p }) (int_bound 100000);
      map2
        (fun p l ->
          Event.Lock_acquire
            { lock_ptr = p; kind = Event.Mutex; side = Event.Exclusive; name = "m"; loc = l })
        (int_bound 100000) loc;
      map2 (fun p l -> Event.Lock_release { lock_ptr = p; loc = l }) (int_bound 100000) loc;
      map3
        (fun p s l -> Event.Mem_access { ptr = p; size = s + 1; kind = Event.Read; loc = l })
        (int_bound 100000) (int_bound 16) loc;
      map (fun pid -> Event.Ctx_switch { pid; kind = Event.Task }) (int_bound 64);
    ]

let prop_event_roundtrip =
  QCheck.Test.make ~name:"random event line roundtrip" ~count:300
    (QCheck.make event_gen)
    (fun ev -> Event.equal ev (Event.of_line (Event.to_line ev)))

(* {2 Trace container} *)

let test_sink_order () =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) sample_events;
  check Alcotest.int "emitted" (List.length sample_events) (Trace.emitted sink);
  let trace = Trace.finish ~layouts:[ example_layout ] sink in
  check Alcotest.int "array size" (List.length sample_events)
    (Array.length trace.Trace.events);
  List.iteri
    (fun i ev ->
      check Alcotest.bool "order preserved" true
        (Event.equal ev trace.Trace.events.(i)))
    sample_events

let test_trace_lines_roundtrip () =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) sample_events;
  let trace = Trace.finish ~layouts:[ example_layout ] sink in
  let back = Trace.of_lines (Trace.to_lines trace) in
  check Alcotest.int "layouts survive" 1 (List.length back.Trace.layouts);
  check Alcotest.int "events survive" (Array.length trace.Trace.events)
    (Array.length back.Trace.events)

let test_trace_save_load () =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) sample_events;
  let trace = Trace.finish ~layouts:[ example_layout ] sink in
  let path = Filename.temp_file "lockdoc_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path trace;
      let back = Trace.load path in
      check Alcotest.int "events" (Array.length trace.Trace.events)
        (Array.length back.Trace.events);
      check Alcotest.int "count reads" 1
        (Trace.count back (function
          | Event.Mem_access { kind = Event.Read; _ } -> true
          | _ -> false)))

let () =
  Alcotest.run "trace"
    [
      ( "srcloc",
        [
          Alcotest.test_case "roundtrip" `Quick test_srcloc_roundtrip;
          Alcotest.test_case "ordering" `Quick test_srcloc_ordering;
          Alcotest.test_case "malformed" `Quick test_srcloc_malformed;
        ] );
      ( "layout",
        [
          Alcotest.test_case "offsets" `Quick test_layout_offsets;
          Alcotest.test_case "member_at" `Quick test_layout_member_at;
          Alcotest.test_case "data members" `Quick test_layout_data_members;
          Alcotest.test_case "roundtrip" `Quick test_layout_roundtrip;
        ] );
      ( "event",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_event_roundtrip;
          Alcotest.test_case "lock kinds" `Quick test_lock_kind_roundtrip;
          Alcotest.test_case "malformed" `Quick test_event_malformed;
          qtest prop_event_roundtrip;
        ] );
      ( "container",
        [
          Alcotest.test_case "sink order" `Quick test_sink_order;
          Alcotest.test_case "lines roundtrip" `Quick test_trace_lines_roundtrip;
          Alcotest.test_case "save/load" `Quick test_trace_save_load;
        ] );
    ]
