(* Tests for the trace substrate: source locations, type layouts, event
   serialisation and the trace container. *)

module Srcloc = Lockdoc_trace.Srcloc
module Layout = Lockdoc_trace.Layout
module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 Srcloc} *)

let test_srcloc_roundtrip () =
  let loc = Srcloc.make "fs/inode.c" 507 in
  check Alcotest.string "to_string" "fs/inode.c:507" (Srcloc.to_string loc);
  check Alcotest.bool "roundtrip" true
    (Srcloc.equal loc (Srcloc.of_string (Srcloc.to_string loc)))

let test_srcloc_ordering () =
  let a = Srcloc.make "a.c" 10 and b = Srcloc.make "a.c" 20 in
  check Alcotest.bool "line order" true (Srcloc.compare a b < 0);
  let c = Srcloc.make "b.c" 1 in
  check Alcotest.bool "file order" true (Srcloc.compare a c < 0)

let test_srcloc_malformed () =
  Alcotest.check_raises "no colon" (Failure "Srcloc.of_string: missing ':' in nope")
    (fun () -> ignore (Srcloc.of_string "nope"))

(* {2 Layout} *)

let example_layout =
  Layout.make ~name:"thing"
    [ ("a", 4, Layout.Data); ("lock", 4, Layout.Lock); ("n", 8, Layout.Atomic) ]

let test_layout_offsets () =
  check Alcotest.int "total size" 16 example_layout.Layout.ty_size;
  let m = Layout.find_member example_layout "lock" in
  check Alcotest.int "offset" 4 m.Layout.m_offset;
  check Alcotest.int "size" 4 m.Layout.m_size

let test_layout_member_at () =
  let name_at off =
    Option.map (fun m -> m.Layout.m_name) (Layout.member_at example_layout off)
  in
  check (Alcotest.option Alcotest.string) "first byte" (Some "a") (name_at 0);
  check (Alcotest.option Alcotest.string) "interior byte" (Some "a") (name_at 3);
  check (Alcotest.option Alcotest.string) "second member" (Some "lock") (name_at 4);
  check (Alcotest.option Alcotest.string) "last byte" (Some "n") (name_at 15);
  check (Alcotest.option Alcotest.string) "past the end" None (name_at 16)

let test_layout_data_members () =
  check (Alcotest.list Alcotest.string) "data members only" [ "a" ]
    (List.map (fun m -> m.Layout.m_name) (Layout.data_members example_layout))

let test_layout_roundtrip () =
  let s = Layout.to_string example_layout in
  let back = Layout.of_string s in
  check Alcotest.string "name" "thing" back.Layout.ty_name;
  check Alcotest.int "size" 16 back.Layout.ty_size;
  check Alcotest.int "members" 3 (List.length back.Layout.members);
  check Alcotest.string "reserialise" s (Layout.to_string back)

(* {2 Event} *)

let sample_events =
  [
    Event.Alloc { ptr = 0x1000; size = 64; data_type = "inode"; subclass = Some "ext4" };
    Event.Alloc { ptr = 0x2000; size = 32; data_type = "dentry"; subclass = None };
    Event.Free { ptr = 0x1000 };
    Event.Lock_acquire
      {
        lock_ptr = 0x10;
        kind = Event.Spinlock;
        side = Event.Exclusive;
        name = "i_lock";
        loc = Srcloc.make "fs/inode.c" 42;
      };
    Event.Lock_acquire
      {
        lock_ptr = 0x20;
        kind = Event.Rwsem;
        side = Event.Shared;
        name = "s_umount";
        loc = Srcloc.make "fs/super.c" 7;
      };
    Event.Lock_release { lock_ptr = 0x10; loc = Srcloc.make "fs/inode.c" 44 };
    Event.Mem_access
      { ptr = 0x1010; size = 8; kind = Event.Read; loc = Srcloc.make "fs/stat.c" 3 };
    Event.Mem_access
      { ptr = 0x1018; size = 4; kind = Event.Write; loc = Srcloc.make "fs/attr.c" 9 };
    Event.Fun_enter { fn = "iget_locked"; loc = Srcloc.make "fs/inode.c" 30 };
    Event.Fun_exit { fn = "iget_locked" };
    Event.Ctx_switch { pid = 3; kind = Event.Task };
    Event.Ctx_switch { pid = 1001; kind = Event.Hardirq };
    Event.Ctx_switch { pid = 2001; kind = Event.Softirq };
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      let back = Event.of_line (Event.to_line ev) in
      check Alcotest.bool (Event.to_line ev) true (Event.equal ev back))
    sample_events

let test_lock_kind_roundtrip () =
  List.iter
    (fun k ->
      check Alcotest.bool "kind roundtrip" true
        (Event.lock_kind_of_string (Event.lock_kind_to_string k) = k))
    [
      Event.Spinlock; Event.Rwlock; Event.Mutex; Event.Semaphore; Event.Rwsem;
      Event.Rcu; Event.Seqlock; Event.Pseudo;
    ]

let test_event_malformed () =
  Alcotest.check_raises "garbage line"
    (Failure "Event.of_line: malformed line: ???") (fun () ->
      ignore (Event.of_line "???"))

let event_gen =
  let open QCheck.Gen in
  let loc = map2 (fun f l -> Srcloc.make (Printf.sprintf "f%d.c" f) l) (int_bound 20) (int_bound 5000) in
  oneof
    [
      map2 (fun p s -> Event.Alloc { ptr = p; size = s + 1; data_type = "t"; subclass = None })
        (int_bound 100000) (int_bound 512);
      map (fun p -> Event.Free { ptr = p }) (int_bound 100000);
      map2
        (fun p l ->
          Event.Lock_acquire
            { lock_ptr = p; kind = Event.Mutex; side = Event.Exclusive; name = "m"; loc = l })
        (int_bound 100000) loc;
      map2 (fun p l -> Event.Lock_release { lock_ptr = p; loc = l }) (int_bound 100000) loc;
      map3
        (fun p s l -> Event.Mem_access { ptr = p; size = s + 1; kind = Event.Read; loc = l })
        (int_bound 100000) (int_bound 16) loc;
      map (fun pid -> Event.Ctx_switch { pid; kind = Event.Task }) (int_bound 64);
    ]

let prop_event_roundtrip =
  QCheck.Test.make ~name:"random event line roundtrip" ~count:300
    (QCheck.make event_gen)
    (fun ev -> Event.equal ev (Event.of_line (Event.to_line ev)))

(* {2 Trace container} *)

let test_sink_order () =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) sample_events;
  check Alcotest.int "emitted" (List.length sample_events) (Trace.emitted sink);
  let trace = Trace.finish ~layouts:[ example_layout ] sink in
  check Alcotest.int "array size" (List.length sample_events)
    (Array.length trace.Trace.events);
  List.iteri
    (fun i ev ->
      check Alcotest.bool "order preserved" true
        (Event.equal ev trace.Trace.events.(i)))
    sample_events

let test_trace_lines_roundtrip () =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) sample_events;
  let trace = Trace.finish ~layouts:[ example_layout ] sink in
  let back = Trace.of_lines (Trace.to_lines trace) in
  check Alcotest.int "layouts survive" 1 (List.length back.Trace.layouts);
  check Alcotest.int "events survive" (Array.length trace.Trace.events)
    (Array.length back.Trace.events)

let test_trace_save_load () =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) sample_events;
  let trace = Trace.finish ~layouts:[ example_layout ] sink in
  let path = Filename.temp_file "lockdoc_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path trace;
      let back = Trace.load path in
      check Alcotest.int "events" (Array.length trace.Trace.events)
        (Array.length back.Trace.events);
      check Alcotest.int "count reads" 1
        (Trace.count back (function
          | Event.Mem_access { kind = Event.Read; _ } -> true
          | _ -> false)))

(* {2 Validating reader} *)

module Diag = Lockdoc_trace.Diag
module Check = Lockdoc_trace.Check
module Corrupt = Lockdoc_trace.Corrupt

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let write_temp lines =
  let path = Filename.temp_file "lockdoc_test" ".trace" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  path

let test_load_reports_file_and_line () =
  let good = Event.to_line (Event.Free { ptr = 7 }) in
  let path = write_temp [ good; good; "A\tnot_a_number\t4\tt\t-" ] in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Trace.load path with
      | _ -> Alcotest.fail "bad file accepted"
      | exception Failure msg ->
          check Alcotest.bool ("file name in: " ^ msg) true
            (contains ~sub:path msg);
          check Alcotest.bool ("line number in: " ^ msg) true
            (contains ~sub:":3:" msg))

let kinds diags = List.map (fun d -> d.Diag.d_kind) diags

let test_lenient_reader_classifies () =
  let good = Event.to_line (Event.Free { ptr = 7 }) in
  let layout = "T\t" ^ Layout.to_string example_layout in
  let lines =
    [
      good;
      "Z\twhat";                  (* unknown tag *)
      "A\t1\t2";                  (* truncated record *)
      "A\tnope\t4\tt\t-";         (* malformed field *)
      layout;
      layout;                      (* duplicate layout *)
      good;
    ]
  in
  let t, diags = Trace.read_lines ~mode:Trace.Lenient lines in
  check Alcotest.int "good events kept" 2 (Array.length t.Trace.events);
  check Alcotest.int "one layout kept" 1 (List.length t.Trace.layouts);
  check
    (Alcotest.list Alcotest.string)
    "diag kinds"
    [ "unknown-tag"; "truncated-record"; "malformed-field"; "duplicate-layout" ]
    (List.map Diag.kind_to_string (kinds diags));
  (* Strict mode raises on the first of the same anomalies. *)
  (match Trace.read_lines ~mode:Trace.Strict lines with
  | _ -> Alcotest.fail "strict accepted bad lines"
  | exception Trace.Invalid d ->
      check Alcotest.string "first anomaly" "unknown-tag"
        (Diag.kind_to_string d.Diag.d_kind));
  (* A clean input yields no diagnostics in either mode. *)
  let _, clean = Trace.read_lines ~mode:Trace.Lenient [ good; layout ] in
  check Alcotest.int "clean input" 0 (List.length clean)

(* {2 Stream invariants} *)

let mk_trace events =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) events;
  Trace.finish ~layouts:[ example_layout ] sink

let loc = Srcloc.make "x.c" 1

let test_check_clean () =
  let t =
    mk_trace
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        Event.Alloc { ptr = 0x1000; size = 16; data_type = "thing"; subclass = None };
        Event.Lock_acquire
          { lock_ptr = 0x1004; kind = Event.Spinlock; side = Event.Exclusive;
            name = "lock"; loc };
        Event.Mem_access { ptr = 0x1000; size = 4; kind = Event.Write; loc };
        Event.Lock_release { lock_ptr = 0x1004; loc };
        Event.Free { ptr = 0x1000 };
      ]
  in
  check Alcotest.bool "clean" true (Check.is_clean t)

let test_check_flags_anomalies () =
  let expect name events expected =
    let got =
      List.sort_uniq compare (List.map Diag.kind_to_string (kinds (Check.run (mk_trace events))))
    in
    check (Alcotest.list Alcotest.string) name expected got
  in
  let alloc = Event.Alloc { ptr = 0x1000; size = 16; data_type = "thing"; subclass = None } in
  expect "double free"
    [ alloc; Event.Free { ptr = 0x1000 }; Event.Free { ptr = 0x1000 } ]
    [ "double-free" ];
  expect "free without alloc" [ Event.Free { ptr = 0x4444 } ]
    [ "free-without-alloc" ];
  expect "access after free"
    [ alloc; Event.Free { ptr = 0x1000 };
      Event.Mem_access { ptr = 0x1008; size = 4; kind = Event.Read; loc } ]
    [ "access-after-free" ];
  expect "access outside"
    [ Event.Mem_access { ptr = 0x9999; size = 4; kind = Event.Read; loc } ]
    [ "access-outside-alloc" ];
  expect "unknown data type"
    [ Event.Alloc { ptr = 0x2000; size = 8; data_type = "mystery"; subclass = None };
      Event.Free { ptr = 0x2000 } ]
    [ "unknown-data-type" ];
  expect "unbalanced release"
    [ Event.Lock_release { lock_ptr = 0x50; loc } ]
    [ "unbalanced-release" ];
  expect "unclosed txn"
    [ Event.Lock_acquire
        { lock_ptr = 0x50; kind = Event.Mutex; side = Event.Exclusive;
          name = "m"; loc } ]
    [ "unclosed-txn" ];
  expect "double acquire"
    [ Event.Lock_acquire
        { lock_ptr = 0x50; kind = Event.Mutex; side = Event.Exclusive;
          name = "m"; loc };
      Event.Lock_acquire
        { lock_ptr = 0x50; kind = Event.Mutex; side = Event.Exclusive;
          name = "m"; loc };
      Event.Lock_release { lock_ptr = 0x50; loc };
      Event.Lock_release { lock_ptr = 0x50; loc } ]
    [ "double-acquire" ];
  expect "irq imbalance"
    [ Event.Ctx_switch { pid = 1001; kind = Event.Hardirq } ]
    [ "irq-imbalance" ];
  expect "flow kind conflict"
    [ Event.Ctx_switch { pid = 9; kind = Event.Task };
      Event.Ctx_switch { pid = 9; kind = Event.Softirq };
      Event.Ctx_switch { pid = 9; kind = Event.Task } ]
    [ "flow-kind-conflict" ];
  (* Seqlock writer overlapping an optimistic reader is legitimate. *)
  expect "seqlock overlap ok"
    [ Event.Lock_acquire
        { lock_ptr = 0x60; kind = Event.Seqlock; side = Event.Shared;
          name = "seq"; loc };
      Event.Lock_acquire
        { lock_ptr = 0x60; kind = Event.Seqlock; side = Event.Exclusive;
          name = "seq"; loc };
      Event.Lock_release { lock_ptr = 0x60; loc };
      Event.Lock_release { lock_ptr = 0x60; loc } ]
    []

(* {2 Corruption} *)

let test_corrupt_deterministic () =
  let lines = Trace.to_lines (mk_trace sample_events) in
  let c1, ops1 = Corrupt.corrupt ~seed:5 lines in
  let c2, ops2 = Corrupt.corrupt ~seed:5 lines in
  check Alcotest.bool "same seed, same lines" true (c1 = c2);
  check
    (Alcotest.list Alcotest.string)
    "same seed, same ops"
    (List.map Corrupt.describe ops1)
    (List.map Corrupt.describe ops2);
  check Alcotest.bool "always altered" true (c1 <> lines);
  let distinct =
    List.sort_uniq compare
      (List.init 20 (fun seed -> fst (Corrupt.corrupt ~seed lines)))
  in
  check Alcotest.bool "seeds diversify" true (List.length distinct > 5)

let test_corrupt_ops_count () =
  let lines = Trace.to_lines (mk_trace sample_events) in
  let _, ops = Corrupt.corrupt ~ops:4 ~seed:9 lines in
  check Alcotest.int "requested op count" 4 (List.length ops)

(* {2 Escaped identifiers} *)

let nasty_string =
  QCheck.Gen.oneofl
    [
      ""; " "; "a b"; "a\tb"; "a\nb"; "a\rb"; "a;b"; "a,b"; "-"; "a\\b";
      "a|b"; "x:y"; "tab\tsep;and,more"; "\\"; ";";
    ]

let nasty_event_gen =
  let open QCheck.Gen in
  let s = nasty_string in
  let sub = oneof [ return None; map (fun x -> Some x) s ] in
  oneof
    [
      map2
        (fun dt sc -> Event.Alloc { ptr = 0x1000; size = 8; data_type = dt; subclass = sc })
        s sub;
      map
        (fun name ->
          Event.Lock_acquire
            { lock_ptr = 0x10; kind = Event.Spinlock; side = Event.Exclusive;
              name; loc })
        s;
      map (fun fn -> Event.Fun_enter { fn; loc }) s;
      map (fun fn -> Event.Fun_exit { fn }) s;
    ]

let prop_nasty_trace_roundtrip =
  QCheck.Test.make ~name:"escaped identifier trace roundtrip" ~count:500
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (int_range 0 8) nasty_event_gen)
           (pair nasty_string (list_size (int_range 1 3) nasty_string))))
    (fun (events, (ty_name, members)) ->
      let layout =
        Layout.make
          ~name:(if ty_name = "" then "t" else ty_name)
          (List.mapi
             (fun i m -> (Printf.sprintf "%d%s" i m, 4, Layout.Data))
             members)
      in
      let sink = Trace.sink () in
      List.iter (Trace.emit sink) events;
      let t = Trace.finish ~layouts:[ layout ] sink in
      let back = Trace.of_lines (Trace.to_lines t) in
      List.length back.Trace.layouts = 1
      && Layout.to_string (List.hd back.Trace.layouts) = Layout.to_string layout
      && Array.length back.Trace.events = List.length events
      && List.for_all2 Event.equal events (Array.to_list back.Trace.events))

let () =
  Alcotest.run "trace"
    [
      ( "srcloc",
        [
          Alcotest.test_case "roundtrip" `Quick test_srcloc_roundtrip;
          Alcotest.test_case "ordering" `Quick test_srcloc_ordering;
          Alcotest.test_case "malformed" `Quick test_srcloc_malformed;
        ] );
      ( "layout",
        [
          Alcotest.test_case "offsets" `Quick test_layout_offsets;
          Alcotest.test_case "member_at" `Quick test_layout_member_at;
          Alcotest.test_case "data members" `Quick test_layout_data_members;
          Alcotest.test_case "roundtrip" `Quick test_layout_roundtrip;
        ] );
      ( "event",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_event_roundtrip;
          Alcotest.test_case "lock kinds" `Quick test_lock_kind_roundtrip;
          Alcotest.test_case "malformed" `Quick test_event_malformed;
          qtest prop_event_roundtrip;
        ] );
      ( "container",
        [
          Alcotest.test_case "sink order" `Quick test_sink_order;
          Alcotest.test_case "lines roundtrip" `Quick test_trace_lines_roundtrip;
          Alcotest.test_case "save/load" `Quick test_trace_save_load;
        ] );
      ( "reader",
        [
          Alcotest.test_case "bad file carries location" `Quick
            test_load_reports_file_and_line;
          Alcotest.test_case "lenient classification" `Quick
            test_lenient_reader_classifies;
          qtest prop_nasty_trace_roundtrip;
        ] );
      ( "check",
        [
          Alcotest.test_case "clean trace" `Quick test_check_clean;
          Alcotest.test_case "flags anomalies" `Quick test_check_flags_anomalies;
        ] );
      ( "corrupt",
        [
          Alcotest.test_case "deterministic" `Quick test_corrupt_deterministic;
          Alcotest.test_case "op count" `Quick test_corrupt_ops_count;
        ] );
    ]
