(* The durability layer: WAL framing and damage tolerance, atomic
   snapshots, the durable import coordinator, and the satellite fixes
   that ride along with it (Fieldenc-escaped CSV, descriptive store
   lookup errors). *)

module Trace = Lockdoc_trace.Trace
module Layout = Lockdoc_trace.Layout
module Event = Lockdoc_trace.Event
module Srcloc = Lockdoc_trace.Srcloc
module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Op = Lockdoc_db.Op
module Wal = Lockdoc_db.Wal
module Snapshot = Lockdoc_db.Snapshot
module Durable = Lockdoc_db.Durable
module Crashpoint = Lockdoc_db.Crashpoint
module Import = Lockdoc_db.Import
module Filter = Lockdoc_db.Filter
module Run = Lockdoc_ksim.Run
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Report = Lockdoc_core.Report

let check = Alcotest.check

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let mined s = Report.mined_to_json (Derivator.derive_all (Dataset.of_store s))

(* {2 WAL} *)

let test_crc32 () =
  check Alcotest.int "IEEE check vector" 0xCBF43926 (Wal.crc32 "123456789");
  check Alcotest.int "empty" 0 (Wal.crc32 "");
  (* crc32 "a" has bit 31 set: on 64-bit OCaml it exceeds Int32.max_int,
     so the [Int32.of_int] in the frame header truncates it to a
     negative int32. The reader must mask it back ([land 0xFFFFFFFF]);
     these vectors pin both halves of that contract. *)
  check Alcotest.int "top-bit vector" 0xE8B7BE43 (Wal.crc32 "a");
  check Alcotest.int "top-bit clear vector" 0x352441C2 (Wal.crc32 "abc")

let test_wal_crc32_edge_payloads () =
  with_dir "lockdoc_wal" @@ fun dir ->
  let w = Wal.create ~dir () in
  (* Empty payload (len 0, crc 0) and a payload whose crc32 has the top
     bit set, exercising the Int32 truncation path end to end. *)
  let edge = [ ""; "a"; "abc"; String.make 3 '\x00' ] in
  List.iter (Wal.append w) edge;
  Wal.close w;
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "no tear" true (torn = None);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "edge payloads round-trip"
    (List.mapi (fun i p -> (i, p)) edge)
    records

let payloads = List.init 100 (fun i -> Printf.sprintf "record %d \t with tabs" i)

let test_wal_roundtrip () =
  with_dir "lockdoc_wal" @@ fun dir ->
  let w = Wal.create ~dir () in
  List.iter (Wal.append w) payloads;
  check Alcotest.int "lsn advanced" 100 (Wal.lsn w);
  Wal.close w;
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "no tear" true (torn = None);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "all records back"
    (List.mapi (fun i p -> (i, p)) payloads)
    records;
  (* Reading from an offset skips the prefix. *)
  let tail, torn = Wal.read ~dir ~from:97 in
  check Alcotest.bool "no tear from offset" true (torn = None);
  check Alcotest.int "suffix length" 3 (List.length tail);
  check Alcotest.int "first lsn" 97 (fst (List.hd tail))

let test_wal_rotation () =
  with_dir "lockdoc_wal" @@ fun dir ->
  (* Tiny segments: every record or two starts a new file. *)
  let w = Wal.create ~dir ~segment_bytes:32 () in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  check Alcotest.bool "multiple segments" true
    (List.length (Wal.segment_files ~dir) > 3);
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "no tear" true (torn = None);
  check Alcotest.int "all records across segments" 100 (List.length records);
  (* Compaction: dropping below lsn 50 must keep everything >= 50. *)
  Wal.drop_below ~dir ~lsn:50;
  let records, torn = Wal.read ~dir ~from:50 in
  check Alcotest.bool "no tear after drop" true (torn = None);
  check Alcotest.int "suffix intact" 50 (List.length records);
  check Alcotest.bool "some segments deleted" true
    (List.length (Wal.segment_files ~dir) < 50)

let test_wal_torn_tail () =
  with_dir "lockdoc_wal" @@ fun dir ->
  let w = Wal.create ~dir () in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  let _, path = List.hd (Wal.segment_files ~dir) in
  let content = read_file path in
  (* Chop mid-record: the reader must deliver the intact prefix. *)
  write_file path (String.sub content 0 (String.length content - 11));
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "tear detected" true (torn <> None);
  check Alcotest.int "intact prefix survives" 99 (List.length records)

let test_wal_bit_flip () =
  with_dir "lockdoc_wal" @@ fun dir ->
  let w = Wal.create ~dir () in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  let _, path = List.hd (Wal.segment_files ~dir) in
  let content = Bytes.of_string (read_file path) in
  let pos = Bytes.length content - 20 in
  Bytes.set content pos (Char.chr (Char.code (Bytes.get content pos) lxor 0x40));
  write_file path (Bytes.to_string content);
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "flip detected" true (torn <> None);
  check Alcotest.bool "prefix survives, no raise" true
    (List.length records >= 98)

let test_wal_truncate_and_resume () =
  with_dir "lockdoc_wal" @@ fun dir ->
  let w = Wal.create ~dir ~segment_bytes:64 () in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  Wal.truncate_after ~dir ~lsn:42;
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "no tear after truncate" true (torn = None);
  check Alcotest.int "exactly the prefix" 42 (List.length records);
  (* A writer resuming at the truncation point continues the sequence. *)
  let w = Wal.create ~dir ~start_lsn:42 () in
  Wal.append w "resumed";
  Wal.close w;
  let records, torn = Wal.read ~dir ~from:0 in
  check Alcotest.bool "still clean" true (torn = None);
  check Alcotest.int "sequence continued" 43 (List.length records);
  check Alcotest.string "resumed record" "resumed"
    (snd (List.nth records 42))

(* {2 Op codec} *)

let test_op_roundtrip () =
  let loc = Srcloc.make "fs/inode.c" 77 in
  let ops =
    [
      Op.Add_data_type
        (Layout.make ~name:"w;x,\ty" [ ("m;1", 8, Layout.Data) ]);
      Op.Add_allocation
        { ptr = 0x100; size = 64; ty = 0; subclass = Some "-"; start = 3 };
      Op.Add_allocation
        { ptr = 0x200; size = 64; ty = 0; subclass = None; start = 4 };
      Op.Set_alloc_end { al = 0; at = Some 9 };
      Op.Set_alloc_end { al = 1; at = None };
      Op.Add_lock
        {
          ptr = 0x108;
          kind = Event.Spinlock;
          name = "l;ock";
          parent = Some (0, "m;1");
        };
      Op.Add_txn
        {
          locks =
            [ { Schema.h_lock = 0; h_side = Event.Shared; h_loc = loc } ];
          ctx = 12;
        };
      Op.Add_access
        {
          event = 5;
          alloc = 0;
          member = "m;1";
          kind = Event.Write;
          txn = Some 0;
          loc;
          stack = 0;
          ctx = 12;
        };
      Op.Intern_stack [ "f\tn"; "g;h" ];
    ]
  in
  List.iter
    (fun op ->
      let line = Op.to_line op in
      check Alcotest.bool "single line" false (String.contains line '\n');
      check Alcotest.bool
        (Printf.sprintf "roundtrip [%s]" line)
        true
        (Op.equal op (Op.of_line line)))
    ops

let test_op_replay () =
  (* Replaying the logged ops of an import must clone the store. *)
  let trace = Run.workload_trace ~seed:11 ~scale:1 "fsstress" in
  let ops = ref [] in
  let g =
    Import.engine ~log:(fun op -> ops := op :: !ops) trace.Trace.layouts
  in
  Array.iter (Import.feed g) trace.Trace.events;
  ignore (Import.finalize g);
  let original = Import.engine_store g in
  let clone = Store.create () in
  List.iter (Store.apply clone) (List.rev !ops);
  check Alcotest.int "accesses" (Store.n_accesses original)
    (Store.n_accesses clone);
  check Alcotest.int "txns" (Store.n_txns original) (Store.n_txns clone);
  check Alcotest.int "locks" (Store.n_locks original) (Store.n_locks clone);
  check Alcotest.int "stacks" (Store.n_stacks original) (Store.n_stacks clone);
  check
    (Alcotest.list Alcotest.string)
    "type keys" (Store.type_keys original) (Store.type_keys clone);
  check Alcotest.string "mined rules" (mined original) (mined clone)

(* {2 Snapshots} *)

(* Satellite: serialise a store built from every ksim workload family,
   reload, and compare counts, type keys and derived rules. *)
let test_snapshot_roundtrip_all_families () =
  List.iter
    (fun name ->
      with_dir "lockdoc_snap" @@ fun dir ->
      let trace = Run.workload_trace ~seed:11 name in
      let store, stats = Import.run trace in
      let meta =
        {
          Snapshot.m_snapshot = Snapshot.snapshot_name 0;
          m_wal_lsn = 0;
          m_trace_offset = Array.length trace.Trace.events;
          m_trace_file = "";
          m_trace_events = Array.length trace.Trace.events;
          m_complete = true;
        }
      in
      Snapshot.save ~dir
        {
          Snapshot.p_meta = meta;
          p_store = store;
          p_engine = None;
          p_stats = Some stats;
        };
      match Snapshot.load (Filename.concat dir meta.Snapshot.m_snapshot) with
      | None -> Alcotest.failf "%s: snapshot did not load" name
      | Some p ->
          let back = p.Snapshot.p_store in
          check Alcotest.int (name ^ ": n_accesses") (Store.n_accesses store)
            (Store.n_accesses back);
          check Alcotest.int (name ^ ": n_txns") (Store.n_txns store)
            (Store.n_txns back);
          check Alcotest.int (name ^ ": n_locks") (Store.n_locks store)
            (Store.n_locks back);
          check Alcotest.int (name ^ ": n_allocations")
            (Store.n_allocations store) (Store.n_allocations back);
          check Alcotest.int (name ^ ": n_data_types")
            (Store.n_data_types store) (Store.n_data_types back);
          check Alcotest.int (name ^ ": n_stacks") (Store.n_stacks store)
            (Store.n_stacks back);
          check
            (Alcotest.list Alcotest.string)
            (name ^ ": type keys") (Store.type_keys store)
            (Store.type_keys back);
          check Alcotest.bool (name ^ ": stats survive") true
            (p.Snapshot.p_stats = Some stats);
          check Alcotest.string (name ^ ": mined rules") (mined store)
            (mined back))
    Run.workload_names

let test_snapshot_corruption () =
  with_dir "lockdoc_snap" @@ fun dir ->
  let trace = Run.workload_trace ~seed:11 ~scale:1 "fsstress" in
  let store, _ = Import.run trace in
  let meta =
    {
      Snapshot.m_snapshot = Snapshot.snapshot_name 0;
      m_wal_lsn = 0;
      m_trace_offset = 0;
      m_trace_file = "";
      m_trace_events = 0;
      m_complete = false;
    }
  in
  Snapshot.save ~dir
    { Snapshot.p_meta = meta; p_store = store; p_engine = None; p_stats = None };
  let path = Filename.concat dir meta.Snapshot.m_snapshot in
  let good = read_file path in
  (* Bit flip in the payload: checksum must catch it. *)
  let bad = Bytes.of_string good in
  let pos = Bytes.length bad / 2 in
  Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 1));
  write_file path (Bytes.to_string bad);
  check Alcotest.bool "flipped snapshot rejected" true
    (Snapshot.load path = None);
  (* Truncation: short read must not raise. *)
  write_file path (String.sub good 0 (String.length good / 2));
  check Alcotest.bool "truncated snapshot rejected" true
    (Snapshot.load path = None);
  (* Wrong magic. *)
  write_file path ("NOTASNAPSHOT\n" ^ good);
  check Alcotest.bool "bad magic rejected" true (Snapshot.load path = None)

let test_manifest_roundtrip () =
  with_dir "lockdoc_manifest" @@ fun dir ->
  let m =
    {
      Snapshot.m_snapshot = "snap-000003.snap";
      m_wal_lsn = 12345;
      m_trace_offset = 67890;
      m_trace_file = "/tmp/odd;name\twith,stuff.trace";
      m_trace_events = 99999;
      m_complete = false;
    }
  in
  Snapshot.write_manifest ~dir m;
  check Alcotest.bool "manifest roundtrips" true
    (Snapshot.read_manifest ~dir = Some m);
  write_file (Filename.concat dir "MANIFEST") "not a manifest\nsnapshot=x\n";
  check Alcotest.bool "damaged manifest rejected" true
    (Snapshot.read_manifest ~dir = None)

(* {2 Store lookup errors (satellite)} *)

let test_descriptive_lookup_errors () =
  let store = Store.create () in
  let expect name fn =
    match fn () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        let has needle =
          let rec go i =
            i + String.length needle <= String.length msg
            && (String.sub msg i (String.length needle) = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool
          (Printf.sprintf "%s names the accessor: %s" name msg)
          true
          (has ("Store." ^ name));
        check Alcotest.bool
          (Printf.sprintf "%s names the id: %s" name msg)
          true (has "7")
  in
  expect "data_type" (fun () -> Store.data_type store 7);
  expect "allocation" (fun () -> Store.allocation store 7);
  expect "lock" (fun () -> Store.lock store 7);
  expect "txn" (fun () -> Store.txn store 7);
  expect "access" (fun () -> Store.access store 7);
  expect "stack" (fun () -> Store.stack store 7)

(* {2 CSV with hostile identifiers (satellite)} *)

let test_csv_fieldenc () =
  (* Identifiers full of the CSV separator, commas, tabs — and a
     subclass that is literally "-", colliding with the null marker. *)
  let loc = Srcloc.make "a;b.c" 1 in
  let store = Store.create () in
  let dt =
    Store.add_data_type store
      (Layout.make ~name:"ty;pe" [ ("mem;ber,\tone", 8, Layout.Data) ])
  in
  let al =
    Store.add_allocation store ~ptr:0x1000 ~size:8 ~ty:dt.Schema.dt_id
      ~subclass:(Some "-") ~start:0
  in
  Store.set_alloc_end store al.Schema.al_id (Some 10);
  let lk =
    Store.add_lock store ~ptr:0x2000 ~kind:Event.Spinlock ~name:"lo;ck,name"
      ~parent:(Some (al.Schema.al_id, "mem;ber,\tone"))
  in
  let tx =
    Store.add_txn store
      ~locks:
        [ { Schema.h_lock = lk.Schema.lk_id; h_side = Event.Exclusive; h_loc = loc } ]
      ~ctx:1
  in
  let stack = Store.intern_stack store [ "fn;one"; "fn,two" ] in
  ignore
    (Store.add_access store ~event:1 ~alloc:al.Schema.al_id
       ~member:"mem;ber,\tone" ~kind:Event.Write ~txn:(Some tx.Schema.tx_id)
       ~loc ~stack ~ctx:1);
  with_dir "lockdoc_csv_hostile" @@ fun dir ->
  Lockdoc_db.Csv.export ~dir store;
  let back = Lockdoc_db.Csv.import ~dir in
  check Alcotest.string "data type name" "ty;pe"
    (Store.data_type back 0).Schema.dt_name;
  let al' = Store.allocation back 0 in
  check (Alcotest.option Alcotest.string) "literal dash subclass" (Some "-")
    al'.Schema.al_subclass;
  check (Alcotest.option Alcotest.int) "al_end survives" (Some 10)
    al'.Schema.al_end;
  let lk' = Store.lock back 0 in
  check Alcotest.string "lock name" "lo;ck,name" lk'.Schema.lk_name;
  check Alcotest.bool "lock parent member" true
    (lk'.Schema.lk_parent = Some (0, "mem;ber,\tone"));
  check
    (Alcotest.list Alcotest.string)
    "stack frames" [ "fn;one"; "fn,two" ] (Store.stack back 0);
  let a = Store.access back 0 in
  check Alcotest.string "access member" "mem;ber,\tone" a.Schema.ac_member;
  check Alcotest.string "access loc" "a;b.c:1"
    (Srcloc.to_string a.Schema.ac_loc);
  check
    (Alcotest.list Alcotest.string)
    "type keys (subclass intact)" [ "ty;pe:-" ] (Store.type_keys back)

(* {2 Durable import} *)

(* Checkpoint interval that guarantees several checkpoints whatever the
   workload's event count. *)
let cp_every trace =
  max 1 (Array.length trace.Trace.events / 5)

let test_durable_matches_plain () =
  with_dir "lockdoc_durable" @@ fun dir ->
  let trace = Run.workload_trace ~seed:11 "fsstress" in
  let checkpoint_every = cp_every trace in
  let plain_store, plain_stats = Import.run trace in
  let store, stats, progress = Durable.import ~dir ~checkpoint_every trace in
  check Alcotest.bool "stats identical" true (plain_stats = stats);
  check Alcotest.int "fresh run" 0 progress.Durable.pr_resumed_from;
  check Alcotest.bool "several checkpoints" true
    (progress.Durable.pr_checkpoints > 2);
  check Alcotest.string "mined rules identical" (mined plain_store)
    (mined store);
  (* recover from the completed dir reproduces the same store. *)
  let r = Durable.recover ~dir in
  check Alcotest.bool "recover complete" true r.Durable.r_complete;
  check Alcotest.bool "recover clean" true (r.Durable.r_torn = None);
  check Alcotest.string "recovered rules identical" (mined plain_store)
    (mined r.Durable.r_store);
  (* Re-importing a completed dir is a fast path: no new work. *)
  let _, stats2, progress2 = Durable.import ~dir ~checkpoint_every trace in
  check Alcotest.bool "fast path stats" true (plain_stats = stats2);
  check Alcotest.int "fast path no checkpoints" 0
    progress2.Durable.pr_checkpoints;
  check Alcotest.int "fast path no wal" 0 progress2.Durable.pr_wal_records

let test_durable_crash_resume () =
  let trace = Run.workload_trace ~seed:11 "fsstress" in
  let checkpoint_every = cp_every trace in
  let golden_store, golden_stats = Import.run trace in
  (* Measure how many crash points one uninterrupted durable import
     has, then kill a second one in the middle of that range. *)
  let total_hits =
    with_dir "lockdoc_durable" @@ fun dir ->
    Crashpoint.reset ();
    ignore (Durable.import ~dir ~checkpoint_every trace);
    Crashpoint.hits ()
  in
  with_dir "lockdoc_durable" @@ fun dir ->
  Crashpoint.reset ();
  Crashpoint.arm ~after:(total_hits / 2);
  (match Durable.import ~dir ~checkpoint_every trace with
  | _ -> Alcotest.fail "expected the armed crash to fire"
  | exception Crashpoint.Crash _ -> ());
  Crashpoint.reset ();
  (* recover never raises and yields a consistent prefix store. *)
  let r = Durable.recover ~dir in
  check Alcotest.bool "prefix has no more accesses than golden" true
    (Store.n_accesses r.Durable.r_store <= Store.n_accesses golden_store);
  (* Resuming completes the import with identical results. *)
  let store, stats, progress = Durable.import ~dir ~checkpoint_every trace in
  check Alcotest.bool "resumed, not restarted" true
    (progress.Durable.pr_resumed_from > 0);
  check Alcotest.bool "stats identical after resume" true
    (golden_stats = stats);
  check Alcotest.string "rules identical after resume" (mined golden_store)
    (mined store)

let test_durable_trace_mismatch () =
  with_dir "lockdoc_durable" @@ fun dir ->
  let trace = Run.workload_trace ~seed:11 ~scale:1 "fsstress" in
  let other = Run.workload_trace ~seed:11 ~scale:2 "fsstress" in
  ignore (Durable.import ~dir ~checkpoint_every:5_000 trace);
  match Durable.import ~dir ~checkpoint_every:5_000 other with
  | _ -> Alcotest.fail "expected a trace-identity failure"
  | exception Failure msg ->
      check Alcotest.bool "message mentions the dir" true
        (String.length msg > 0)

let () =
  Alcotest.run "durable"
    [
      ( "wal",
        [
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "crc32 edge payloads" `Quick
            test_wal_crc32_edge_payloads;
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "rotation + compaction" `Quick test_wal_rotation;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "bit flip" `Quick test_wal_bit_flip;
          Alcotest.test_case "truncate + resume" `Quick
            test_wal_truncate_and_resume;
        ] );
      ( "ops",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_op_roundtrip;
          Alcotest.test_case "replay clones store" `Quick test_op_replay;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip, all families" `Slow
            test_snapshot_roundtrip_all_families;
          Alcotest.test_case "corruption rejected" `Quick
            test_snapshot_corruption;
          Alcotest.test_case "manifest" `Quick test_manifest_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "descriptive lookup errors" `Quick
            test_descriptive_lookup_errors;
        ] );
      ( "csv",
        [
          Alcotest.test_case "hostile identifiers" `Quick test_csv_fieldenc;
        ] );
      ( "durable",
        [
          Alcotest.test_case "matches plain import" `Slow
            test_durable_matches_plain;
          Alcotest.test_case "crash, recover, resume" `Slow
            test_durable_crash_resume;
          Alcotest.test_case "trace identity guard" `Quick
            test_durable_trace_mismatch;
        ] );
    ]
