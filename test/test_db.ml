(* Tests for the relational trace store and the import pipeline: address
   resolution, transaction reconstruction (including nested and
   out-of-order releases), filtering, and IRQ handling modes. *)

module Srcloc = Lockdoc_trace.Srcloc
module Layout = Lockdoc_trace.Layout
module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Schema = Lockdoc_db.Schema
module Store = Lockdoc_db.Store
module Filter = Lockdoc_db.Filter
module Import = Lockdoc_db.Import

let check = Alcotest.check

let loc = Srcloc.make "test.c" 1

(* A small monitored type: two data members, one embedded lock, one
   atomic member. *)
let widget =
  Layout.make ~name:"widget"
    [
      ("w_a", 8, Layout.Data);
      ("w_lock", 4, Layout.Lock);
      ("w_b", 8, Layout.Data);
      ("w_cnt", 4, Layout.Atomic);
    ]

let mk_trace events =
  let sink = Trace.sink () in
  List.iter (Trace.emit sink) events;
  Trace.finish ~layouts:[ widget ] sink

let base = 0x100000

let alloc ?subclass ptr =
  Event.Alloc { ptr; size = widget.Layout.ty_size; data_type = "widget"; subclass }

let acquire ?(kind = Event.Spinlock) ?(name = "L") lock_ptr =
  Event.Lock_acquire { lock_ptr; kind; side = Event.Exclusive; name; loc }

let release lock_ptr = Event.Lock_release { lock_ptr; loc }

let read ptr = Event.Mem_access { ptr; size = 8; kind = Event.Read; loc }
let write ptr = Event.Mem_access { ptr; size = 8; kind = Event.Write; loc }

let import ?filter ?irq_mode events = Import.run ?filter ?irq_mode (mk_trace events)

(* {2 Address resolution} *)

let test_resolution () =
  let store, stats =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        read base (* w_a at offset 0 *);
        write (base + 12) (* w_b at offset 12 *);
        read (base + 4) (* interior byte of w_a? no: w_a is 0..7; 4 is interior of w_a *);
      ]
  in
  check Alcotest.int "kept all" 3 stats.Import.accesses_kept;
  check Alcotest.int "no unresolved" 0 stats.Import.unresolved;
  let members =
    List.init (Store.n_accesses store) (fun i -> (Store.access store i).Schema.ac_member)
  in
  check (Alcotest.list Alcotest.string) "members" [ "w_a"; "w_b"; "w_a" ] members

let test_unresolved_access () =
  let _, stats =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        read 0x999999 (* outside any allocation *);
      ]
  in
  check Alcotest.int "unresolved" 1 stats.Import.unresolved;
  check Alcotest.int "kept" 0 stats.Import.accesses_kept

let test_subclass_keys () =
  let store, _ =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc ~subclass:"ext4" base;
        read base;
        alloc (base + 0x100);
        read (base + 0x100);
      ]
  in
  check (Alcotest.list Alcotest.string) "type keys" [ "widget"; "widget:ext4" ]
    (Store.type_keys store)

let test_address_reuse () =
  (* Freeing and reallocating the same address must attribute accesses to
     the right allocation generation. *)
  let store, stats =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        read base;
        Event.Free { ptr = base };
        alloc ~subclass:"gen2" base;
        read base;
      ]
  in
  check Alcotest.int "two allocations" 2 (Store.n_allocations store);
  check Alcotest.int "kept" 2 stats.Import.accesses_kept;
  let a0 = Store.access store 0 and a1 = Store.access store 1 in
  check Alcotest.bool "different allocations" true
    (a0.Schema.ac_alloc <> a1.Schema.ac_alloc);
  check (Alcotest.option Alcotest.int) "first freed" (Some 3)
    (Store.allocation store a0.Schema.ac_alloc).Schema.al_end

(* {2 Transaction reconstruction} *)

let lock1 = 0x10
let lock2 = 0x20

let txn_locks store id =
  (Store.txn store id).Schema.tx_locks
  |> List.map (fun h -> (Store.lock store h.Schema.h_lock).Schema.lk_name)

let access_txn store i = (Store.access store i).Schema.ac_txn

let test_nested_txn_resumes () =
  (* Accesses after the inner release must resume the outer transaction
     (paper Sec. 4.2). *)
  let store, _ =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        acquire ~name:"outer" lock1;
        read base (* txn A *);
        acquire ~name:"inner" lock2;
        read base (* txn B *);
        release lock2;
        read base (* back to txn A *);
        release lock1;
        read base (* no txn *);
      ]
  in
  let t0 = access_txn store 0 and t1 = access_txn store 1 in
  let t2 = access_txn store 2 and t3 = access_txn store 3 in
  check Alcotest.bool "A and B differ" true (t0 <> t1);
  check Alcotest.bool "outer resumed" true (t0 = t2);
  check (Alcotest.option Alcotest.int) "outside any txn" None t3;
  (match t1 with
  | Some b ->
      check (Alcotest.list Alcotest.string) "inner txn locks"
        [ "outer"; "inner" ] (txn_locks store b)
  | None -> Alcotest.fail "inner access had no transaction")

let test_out_of_order_release () =
  (* Hand-over-hand: release the first lock while the second is held. *)
  let store, stats =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        acquire ~name:"a" lock1;
        acquire ~name:"b" lock2;
        release lock1;
        read base (* held: [b] *);
        release lock2;
      ]
  in
  check Alcotest.int "no unbalanced" 0 stats.Import.unbalanced_releases;
  match access_txn store 0 with
  | Some t ->
      check (Alcotest.list Alcotest.string) "only b remains" [ "b" ]
        (txn_locks store t)
  | None -> Alcotest.fail "access lost its transaction"

let test_unbalanced_release () =
  let _, stats =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        acquire ~name:"a" lock1;
        release lock1;
        release lock1;
      ]
  in
  check Alcotest.int "unbalanced counted" 1 stats.Import.unbalanced_releases

let test_per_context_lock_state () =
  (* Two tasks interleave; their held sets must not leak into each other. *)
  let store, _ =
    import ~filter:Filter.empty
      [
        alloc base;
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        acquire ~name:"a" lock1;
        Event.Ctx_switch { pid = 2; kind = Event.Task };
        read base (* task 2 holds nothing *);
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        read base (* task 1 holds a *);
        release lock1;
      ]
  in
  check (Alcotest.option Alcotest.int) "task 2 lock-free" None (access_txn store 0);
  check Alcotest.bool "task 1 in txn" true (access_txn store 1 <> None)

let test_embedded_lock_parent () =
  let store, _ =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        acquire ~name:"w_lock" (base + 8) (* embedded at offset 8 *);
        write base;
        release (base + 8);
      ]
  in
  let lk = Store.lock store 0 in
  (match lk.Schema.lk_parent with
  | Some (al, member) ->
      check Alcotest.int "parent allocation" 0 al;
      check Alcotest.string "parent member" "w_lock" member
  | None -> Alcotest.fail "lock not recognised as embedded");
  let _, stats2 =
    import ~filter:Filter.empty
      [ Event.Ctx_switch { pid = 1; kind = Event.Task };
        acquire ~name:"global" 0x4000; release 0x4000 ]
  in
  check Alcotest.int "static lock" 1 stats2.Import.locks_static

(* {2 Filtering} *)

let test_filter_fn_blacklist () =
  let filter = { Filter.empty with Filter.fn_blacklist = [ "init_fn" ] } in
  let _, stats =
    import ~filter
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        Event.Fun_enter { fn = "init_fn"; loc };
        Event.Fun_enter { fn = "helper"; loc };
        write base (* dropped: init_fn is on the stack *);
        Event.Fun_exit { fn = "helper" };
        Event.Fun_exit { fn = "init_fn" };
        write base (* kept *);
      ]
  in
  check Alcotest.int "one dropped" 1 stats.Import.filtered_fn;
  check Alcotest.int "one kept" 1 stats.Import.accesses_kept

let test_filter_kinds () =
  let filter =
    { Filter.empty with Filter.drop_lock_members = true; drop_atomic_members = true }
  in
  let _, stats =
    import ~filter
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        write (base + 8) (* w_lock *);
        write (base + 20) (* w_cnt, atomic *);
        write base (* w_a, kept *);
      ]
  in
  check Alcotest.int "kind-filtered" 2 stats.Import.filtered_kind;
  check Alcotest.int "kept" 1 stats.Import.accesses_kept

let test_filter_member_blacklist () =
  let filter =
    { Filter.empty with Filter.member_blacklist = [ ("widget", "w_b") ] }
  in
  let _, stats =
    import ~filter
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        write (base + 12) (* w_b, black-listed *);
        write base;
      ]
  in
  check Alcotest.int "member-filtered" 1 stats.Import.filtered_member;
  check Alcotest.int "kept" 1 stats.Import.accesses_kept

let test_stack_recorded () =
  let store, _ =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc base;
        Event.Fun_enter { fn = "outer"; loc };
        Event.Fun_enter { fn = "inner"; loc };
        write base;
        Event.Fun_exit { fn = "inner" };
        Event.Fun_exit { fn = "outer" };
      ]
  in
  let a = Store.access store 0 in
  check (Alcotest.list Alcotest.string) "stack innermost-first"
    [ "inner"; "outer" ]
    (Store.stack store a.Schema.ac_stack)

(* {2 IRQ handling modes} *)

let irq_events =
  [
    Event.Ctx_switch { pid = 1; kind = Event.Task };
    alloc base;
    acquire ~name:"task_lock" lock1;
    Event.Ctx_switch { pid = 1001; kind = Event.Hardirq };
    acquire ~kind:Event.Pseudo ~name:"hardirq" 0x5;
    read base;
    release 0x5;
    Event.Ctx_switch { pid = 1; kind = Event.Task };
    release lock1;
  ]

let test_irq_inherit () =
  let store, _ = Import.run ~filter:Filter.empty ~irq_mode:Import.Inherit (mk_trace irq_events) in
  match (Store.access store 0).Schema.ac_txn with
  | Some t ->
      check (Alcotest.list Alcotest.string) "handler sees task lock + pseudo"
        [ "task_lock"; "hardirq" ] (txn_locks store t)
  | None -> Alcotest.fail "handler access lost its transaction"

let test_irq_separate () =
  let store, _ = Import.run ~filter:Filter.empty ~irq_mode:Import.Separate (mk_trace irq_events) in
  match (Store.access store 0).Schema.ac_txn with
  | Some t ->
      check (Alcotest.list Alcotest.string) "handler sees only the pseudo lock"
        [ "hardirq" ] (txn_locks store t)
  | None -> Alcotest.fail "handler access lost its transaction"

(* {2 CSV export/import} *)

let test_csv_roundtrip () =
  let store, _ =
    import ~filter:Filter.empty
      [
        Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc ~subclass:"ext4" base;
        acquire ~name:"w_lock" (base + 8);
        write base;
        Event.Fun_enter { fn = "writer"; loc };
        read (base + 12);
        Event.Fun_exit { fn = "writer" };
        release (base + 8);
        Event.Free { ptr = base };
      ]
  in
  let dir = Filename.temp_file "lockdoc_csv" "" in
  Sys.remove dir;
  let back = Lockdoc_db.Csv.import ~dir:(Lockdoc_db.Csv.export ~dir store; dir) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.file_exists p then Sys.remove p)
        Lockdoc_db.Csv.files;
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      check Alcotest.int "accesses survive" (Store.n_accesses store)
        (Store.n_accesses back);
      check Alcotest.int "txns survive" (Store.n_txns store) (Store.n_txns back);
      check Alcotest.int "locks survive" (Store.n_locks store) (Store.n_locks back);
      check Alcotest.int "allocations survive" (Store.n_allocations store)
        (Store.n_allocations back);
      check (Alcotest.list Alcotest.string) "type keys survive"
        (Store.type_keys store) (Store.type_keys back);
      (* Row-level fidelity for the access table. *)
      for i = 0 to Store.n_accesses store - 1 do
        let a = Store.access store i and b = Store.access back i in
        check Alcotest.string "member" a.Schema.ac_member b.Schema.ac_member;
        check (Alcotest.option Alcotest.int) "txn" a.Schema.ac_txn b.Schema.ac_txn;
        check (Alcotest.list Alcotest.string) "stack"
          (Store.stack store a.Schema.ac_stack)
          (Store.stack back b.Schema.ac_stack)
      done;
      (* The analysis gives identical answers on the reloaded store. *)
      let mined s =
        Lockdoc_core.Derivator.derive_all (Lockdoc_core.Dataset.of_store s)
        |> List.map (fun m ->
               ( m.Lockdoc_core.Derivator.m_member,
                 Lockdoc_core.Rule.to_string m.Lockdoc_core.Derivator.m_winner ))
      in
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "identical mined rules" (mined store) (mined back))

(* {2 Store misc} *)

let test_stack_interning () =
  let store = Store.create () in
  let a = Store.intern_stack store [ "f"; "g" ] in
  let b = Store.intern_stack store [ "f"; "g" ] in
  let c = Store.intern_stack store [ "g"; "f" ] in
  check Alcotest.int "same stack same id" a b;
  check Alcotest.bool "different stack new id" true (a <> c)

let test_layout_of_key () =
  let store, _ =
    import ~filter:Filter.empty
      [ Event.Ctx_switch { pid = 1; kind = Event.Task };
        alloc ~subclass:"x" base; read base ]
  in
  (match Store.layout_of_key store "widget:x" with
  | Some l -> check Alcotest.string "layout found" "widget" l.Layout.ty_name
  | None -> Alcotest.fail "subclassed key did not resolve")

(* {2 Anomaly recovery} *)

let task = Event.Ctx_switch { pid = 1; kind = Event.Task }

let lenient events = Import.run ~mode:Import.Lenient (mk_trace events)

let test_lenient_double_free () =
  let _, stats =
    lenient [ task; alloc base; Event.Free { ptr = base }; Event.Free { ptr = base } ]
  in
  check Alcotest.int "double free" 1 stats.Import.anomalies.Import.an_double_free;
  check Alcotest.int "total" 1 (Import.anomaly_total stats)

let test_lenient_free_without_alloc () =
  let _, stats = lenient [ task; Event.Free { ptr = 0x4242 } ] in
  check Alcotest.int "free without alloc" 1
    stats.Import.anomalies.Import.an_free_without_alloc

let test_lenient_access_after_free () =
  let _, stats =
    lenient [ task; alloc base; Event.Free { ptr = base }; read (base + 4) ]
  in
  check Alcotest.int "access after free" 1
    stats.Import.anomalies.Import.an_access_after_free;
  (* Recovery: the access also counts as unresolved, like any access
     outside a live allocation. *)
  check Alcotest.int "still unresolved" 1 stats.Import.unresolved

let test_lenient_acquire_on_freed () =
  let _, stats =
    lenient
      [ task; alloc base; Event.Free { ptr = base }; acquire (base + 8);
        release (base + 8) ]
  in
  check Alcotest.int "acquire on freed" 1
    stats.Import.anomalies.Import.an_acquire_on_freed

let test_lenient_unknown_data_type () =
  let _, stats =
    lenient
      [ task;
        Event.Alloc { ptr = 0x5000; size = 8; data_type = "mystery"; subclass = None };
        Event.Free { ptr = 0x5000 } ]
  in
  check Alcotest.int "unknown type" 1
    stats.Import.anomalies.Import.an_unknown_data_type;
  (* The skipped allocation makes its free dangle; that is a second,
     distinct anomaly. *)
  check Alcotest.int "free dangles" 1
    stats.Import.anomalies.Import.an_free_without_alloc

let test_lenient_flow_conflict () =
  let _, stats =
    lenient
      [ task; Event.Ctx_switch { pid = 1; kind = Event.Softirq }; task ]
  in
  check Alcotest.int "flow conflict" 1
    stats.Import.anomalies.Import.an_flow_conflict

let test_lenient_unclosed_txn () =
  let store, stats = lenient [ task; acquire 0x50; write base ] in
  check Alcotest.int "unclosed" 1 stats.Import.anomalies.Import.an_unclosed_txns;
  (* Flushed, not dropped: the transaction row exists. *)
  check Alcotest.bool "txn flushed" true (Store.n_txns store > 0)

let test_strict_raises_on_fatal () =
  let events = [ task; alloc base; Event.Free { ptr = base }; Event.Free { ptr = base } ] in
  match Import.run ~mode:Import.Strict (mk_trace events) with
  | _ -> Alcotest.fail "strict mode accepted a double free"
  | exception Trace.Invalid d ->
      check Alcotest.string "kind" "double-free"
        (Lockdoc_trace.Diag.kind_to_string d.Lockdoc_trace.Diag.d_kind)

let test_modes_agree_on_clean_trace () =
  let trace = Lockdoc_ksim.Run.quick ~seed:3 () in
  let _, strict = Import.run ~mode:Import.Strict trace in
  let _, len = Import.run ~mode:Import.Lenient trace in
  check Alcotest.bool "stats identical" true (strict = len);
  check Alcotest.int "no anomalies" 0 (Import.anomaly_total strict);
  (* A clean trace's stats render without any anomaly section. *)
  let rendered = Format.asprintf "%a" Import.pp_stats strict in
  check Alcotest.bool "no anomaly lines" false
    (String.split_on_char '\n' rendered
    |> List.exists (fun l ->
           String.length l >= 9 && String.sub l 0 9 = "anomalies"))

let () =
  Alcotest.run "db"
    [
      ( "resolution",
        [
          Alcotest.test_case "member resolution" `Quick test_resolution;
          Alcotest.test_case "unresolved access" `Quick test_unresolved_access;
          Alcotest.test_case "subclass keys" `Quick test_subclass_keys;
          Alcotest.test_case "address reuse" `Quick test_address_reuse;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "nested resume" `Quick test_nested_txn_resumes;
          Alcotest.test_case "out-of-order release" `Quick test_out_of_order_release;
          Alcotest.test_case "unbalanced release" `Quick test_unbalanced_release;
          Alcotest.test_case "per-context state" `Quick test_per_context_lock_state;
          Alcotest.test_case "embedded lock parent" `Quick test_embedded_lock_parent;
        ] );
      ( "filtering",
        [
          Alcotest.test_case "function blacklist" `Quick test_filter_fn_blacklist;
          Alcotest.test_case "lock/atomic members" `Quick test_filter_kinds;
          Alcotest.test_case "member blacklist" `Quick test_filter_member_blacklist;
          Alcotest.test_case "stack recorded" `Quick test_stack_recorded;
        ] );
      ( "irq",
        [
          Alcotest.test_case "inherit mode" `Quick test_irq_inherit;
          Alcotest.test_case "separate mode" `Quick test_irq_separate;
        ] );
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip ] );
      ( "store",
        [
          Alcotest.test_case "stack interning" `Quick test_stack_interning;
          Alcotest.test_case "layout of key" `Quick test_layout_of_key;
        ] );
      ( "anomalies",
        [
          Alcotest.test_case "double free" `Quick test_lenient_double_free;
          Alcotest.test_case "free without alloc" `Quick
            test_lenient_free_without_alloc;
          Alcotest.test_case "access after free" `Quick
            test_lenient_access_after_free;
          Alcotest.test_case "acquire on freed" `Quick
            test_lenient_acquire_on_freed;
          Alcotest.test_case "unknown data type" `Quick
            test_lenient_unknown_data_type;
          Alcotest.test_case "flow kind conflict" `Quick
            test_lenient_flow_conflict;
          Alcotest.test_case "unclosed txn flushed" `Quick
            test_lenient_unclosed_txn;
          Alcotest.test_case "strict raises" `Quick test_strict_raises_on_fatal;
          Alcotest.test_case "modes agree when clean" `Quick
            test_modes_agree_on_clean_trace;
        ] );
    ]
