(* Behavioural tests of the simulated kernel subsystems: inode hash/LRU
   lifecycle, dentry tree operations, JBD2 handle/commit/checkpoint
   lifecycle, buffer-head reference counting, pipes, devices and
   writeback — each validated through the traced locking behaviour. *)

module Event = Lockdoc_trace.Event
module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Kernel = Lockdoc_ksim.Kernel
module Lock = Lockdoc_ksim.Lock
module Memory = Lockdoc_ksim.Memory
module Structs = Lockdoc_ksim.Structs
module Obj = Lockdoc_ksim.Obj
module Vfs_inode = Lockdoc_ksim.Vfs_inode
module Vfs_dentry = Lockdoc_ksim.Vfs_dentry
module Vfs_super = Lockdoc_ksim.Vfs_super
module Jbd2 = Lockdoc_ksim.Jbd2
module Buffer = Lockdoc_ksim.Buffer
module Pipe = Lockdoc_ksim.Pipe
module Chardev = Lockdoc_ksim.Chardev
module Blockdev = Lockdoc_ksim.Blockdev
module Fs_misc = Lockdoc_ksim.Fs_misc
module Fs_ext4 = Lockdoc_ksim.Fs_ext4
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Derivator = Lockdoc_core.Derivator

let check = Alcotest.check

let quiet = { Kernel.default_config with Kernel.hardirq_rate = 0.; softirq_rate = 0. }

(* Run one task against a mounted rootfs and return the trace. *)
let with_sb body =
  Kernel.run ~config:quiet ~layouts:Structs.all (fun () ->
      Kernel.spawn "t" (fun () ->
          let sb = Vfs_super.mount Fs_misc.rootfs in
          body sb;
          Vfs_super.umount sb))
  |> fst

let derive trace key member kind =
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_member dataset key ~member ~kind in
  (Rule.to_string mined.Derivator.m_winner, mined)

(* {2 Inode lifecycle} *)

let test_iget_caches () =
  let trace =
    with_sb (fun sb ->
        let a = Vfs_inode.iget sb 10 in
        let b = Vfs_inode.iget sb 10 in
        check Alcotest.bool "same inode from the hash" true (a == b);
        let c = Vfs_inode.iget sb 11 in
        check Alcotest.bool "different ino, different inode" true (a != c);
        Vfs_inode.iput a;
        Vfs_inode.iput b;
        Vfs_inode.iput c)
  in
  (* 2 inodes allocated in total (plus none for the duplicate iget). *)
  check Alcotest.int "two inode allocations" 2
    (Trace.count trace (function
      | Event.Alloc { data_type = "inode"; _ } -> true
      | _ -> false))

let test_unlink_evicts () =
  let trace =
    with_sb (fun sb ->
        let a = Vfs_inode.iget sb 20 in
        Vfs_inode.drop_nlink a;
        Vfs_inode.iput a)
  in
  (* The inode is freed before umount: at least one inode free event. *)
  check Alcotest.bool "inode freed" true
    (Trace.count trace (function Event.Free _ -> true | _ -> false) > 0)

let test_lru_resurrection () =
  ignore
    (with_sb (fun sb ->
         let a = Vfs_inode.iget sb 30 in
         Vfs_inode.iput a (* nlink=1: parked on the LRU *);
         let b = Vfs_inode.iget sb 30 in
         check Alcotest.bool "resurrected from the LRU/hash" true (a == b);
         Vfs_inode.iput b;
         Vfs_inode.prune_icache () (* now really evicted *)))

let test_i_state_writes_locked () =
  let trace =
    with_sb (fun sb ->
        for i = 1 to 30 do
          let a = Vfs_inode.iget sb (40 + (i mod 3)) in
          Vfs_inode.mark_inode_dirty a;
          Vfs_inode.clear_inode_dirty a;
          Vfs_inode.iput a
        done)
  in
  let winner, mined = derive trace "inode:rootfs" "i_state" Rule.W in
  check Alcotest.string "i_state writes under i_lock" "ES(i_lock)" winner;
  check (Alcotest.float 1e-9) "with full support" 1.0
    mined.Derivator.m_support.Lockdoc_core.Hypothesis.sr

let test_size_seqcount () =
  let trace =
    with_sb (fun sb ->
        let a = Vfs_inode.iget sb 50 in
        for i = 1 to 10 do
          Lock.down_write a.Obj.i_rwsem;
          Vfs_inode.i_size_write a (i * 100);
          Lock.up_write a.Obj.i_rwsem;
          ignore (Vfs_inode.i_size_read a)
        done;
        Vfs_inode.iput a)
  in
  let winner_w, _ = derive trace "inode:rootfs" "i_size" Rule.W in
  check Alcotest.string "writes under rwsem+seqcount"
    "ES(i_rwsem) -> ES(i_size_seqcount)" winner_w;
  let winner_r, _ = derive trace "inode:rootfs" "i_size" Rule.R in
  check Alcotest.string "reads in seq sections" "ES(i_size_seqcount)" winner_r

(* {2 Dentry tree} *)

let test_dentry_tree_ops () =
  ignore
    (with_sb (fun sb ->
         let root = Vfs_dentry.d_alloc_root sb in
         let d1 = Vfs_dentry.d_alloc root 101 in
         let d2 = Vfs_dentry.d_alloc root 102 in
         check Alcotest.int "two children" 2 (List.length root.Obj.d_children);
         (match Vfs_dentry.d_lookup root 101 with
         | Some d -> check Alcotest.bool "lookup finds d1" true (d == d1)
         | None -> Alcotest.fail "d_lookup missed");
         (match Vfs_dentry.d_lookup_rcu root 102 with
         | Some d -> check Alcotest.bool "rcu lookup finds d2" true (d == d2)
         | None -> Alcotest.fail "d_lookup_rcu missed");
         check Alcotest.bool "missing name" true
           (Vfs_dentry.d_lookup root 999 = None);
         let inode = Vfs_inode.iget sb 60 in
         Vfs_dentry.d_instantiate d1 inode;
         check Alcotest.bool "instantiated" true
           (match d1.Obj.d_inode_obj with Some i -> i == inode | None -> false);
         Vfs_dentry.d_delete d1;
         check Alcotest.bool "delete detaches the inode" true
           (d1.Obj.d_inode_obj = None);
         Vfs_inode.iput inode;
         Vfs_dentry.remove_child root d1;
         Lock.call_rcu (fun () -> Obj.free_dentry d1);
         Vfs_dentry.remove_child root d2;
         Lock.call_rcu (fun () -> Obj.free_dentry d2);
         Lock.call_rcu (fun () -> Obj.free_dentry root)))

let test_d_move_reparents () =
  ignore
    (with_sb (fun sb ->
         let a = Vfs_dentry.d_alloc_root sb in
         let b = Vfs_dentry.d_alloc_root sb in
         let d = Vfs_dentry.d_alloc a 7 in
         Vfs_dentry.d_move d b;
         check Alcotest.bool "reparented" true
           (match d.Obj.d_parent with Some p -> p == b | None -> false);
         check Alcotest.int "old parent empty" 0 (List.length a.Obj.d_children);
         check Alcotest.int "new parent has it" 1 (List.length b.Obj.d_children);
         Vfs_dentry.remove_child b d;
         Obj.free_dentry d;
         Obj.free_dentry a;
         Obj.free_dentry b))

let test_d_subdirs_rule () =
  let trace =
    with_sb (fun sb ->
        let root = Vfs_dentry.d_alloc_root sb in
        let children =
          List.init 12 (fun i -> Vfs_dentry.d_alloc root (200 + i))
        in
        List.iter
          (fun d ->
            Vfs_dentry.remove_child root d;
            Obj.free_dentry d)
          children;
        Obj.free_dentry root)
  in
  let winner, _ = derive trace "dentry" "d_subdirs" Rule.W in
  check Alcotest.string "own d_lock protects own d_subdirs" "ES(d_lock)" winner;
  let winner_child, _ = derive trace "dentry" "d_child" Rule.W in
  check Alcotest.string "parent's d_lock protects the linkage"
    "EO(d_lock in dentry)" winner_child

(* {2 JBD2 lifecycle} *)

let with_journal body =
  Kernel.run ~config:quiet ~layouts:Structs.all (fun () ->
      Kernel.spawn "j" (fun () ->
          let sb = Vfs_super.mount Fs_ext4.fstype in
          let journal = Fs_ext4.journal_of sb in
          body journal;
          Vfs_super.umount sb))
  |> fst

let test_jbd2_handle_lifecycle () =
  ignore
    (with_journal (fun journal ->
         let txn = Jbd2.journal_start journal in
         check Alcotest.bool "transaction running" true
           (match journal.Obj.j_running with Some t -> t == txn | None -> false);
         let txn2 = Jbd2.journal_start journal in
         check Alcotest.bool "handles share the running txn" true (txn == txn2);
         let bh = Buffer.getblk 5 in
         let jh = Jbd2.journal_get_write_access txn bh in
         check Alcotest.bool "jh attached to bh" true
           (match bh.Obj.bh_jh with Some j -> j == jh | None -> false);
         Jbd2.journal_dirty_metadata txn jh;
         Jbd2.journal_stop txn;
         Jbd2.journal_stop txn2;
         Jbd2.commit_transaction journal;
         check Alcotest.bool "no running txn after commit" true
           (journal.Obj.j_running = None);
         check Alcotest.int "one txn on the checkpoint list" 1
           (List.length journal.Obj.j_checkpoint);
         Jbd2.checkpoint journal;
         check Alcotest.int "checkpoint drained" 0
           (List.length journal.Obj.j_checkpoint);
         Buffer.brelse bh))

let test_jbd2_commit_waits_for_handles () =
  (* A commit racing an open handle must drain it first; the handle's
     transaction stays alive until journal_stop. *)
  ignore
    (Kernel.run ~config:quiet ~layouts:Structs.all (fun () ->
         Kernel.spawn "setup" (fun () ->
             let sb = Vfs_super.mount Fs_ext4.fstype in
             let journal = Fs_ext4.journal_of sb in
             let done_handles = ref 0 in
             Kernel.spawn "writer" (fun () ->
                 let txn = Jbd2.journal_start journal in
                 (* Yield a lot while holding the handle. *)
                 for _ = 1 to 10 do
                   Kernel.preempt_point ()
                 done;
                 let bh = Buffer.getblk 9 in
                 let jh = Jbd2.journal_get_write_access txn bh in
                 Jbd2.journal_dirty_metadata txn jh;
                 Jbd2.journal_stop txn;
                 Buffer.brelse bh;
                 incr done_handles);
             Kernel.spawn "committer" (fun () ->
                 Jbd2.commit_transaction journal;
                 (* When commit finishes, the writer's handle must be gone. *)
                 if journal.Obj.j_checkpoint <> [] then
                   check Alcotest.int "commit waited for the handle" 1
                     !done_handles);
             Kernel.wait_until "children" (fun () -> !done_handles = 1);
             Jbd2.commit_transaction journal;
             Jbd2.checkpoint journal;
             Vfs_super.umount sb)))

let test_jbd2_rules () =
  let trace =
    with_journal (fun journal ->
        for _ = 1 to 12 do
          let txn = Jbd2.journal_start journal in
          let bh = Buffer.getblk 7 in
          let jh = Jbd2.journal_get_write_access txn bh in
          Jbd2.journal_dirty_metadata txn jh;
          Jbd2.journal_stop txn;
          Jbd2.commit_transaction journal;
          Buffer.brelse bh
        done;
        Jbd2.checkpoint journal)
  in
  let winner, _ = derive trace "journal_t" "j_running_transaction" Rule.W in
  check Alcotest.string "journal state under j_state_lock" "ES(j_state_lock)"
    winner;
  let winner_jh, _ = derive trace "journal_head" "b_transaction" Rule.W in
  check Alcotest.string "jh payload under the BH state lock"
    "EO(b_state_lock in buffer_head)" winner_jh

(* {2 Buffer heads} *)

let test_bh_refcounting () =
  let bh_ptr = ref 0 in
  let trace =
    with_sb (fun _sb ->
        let bh = Buffer.bread 3 in
        bh_ptr := bh.Obj.bh_inst.Memory.base;
        check Alcotest.bool "uptodate after read" true (Buffer.buffer_uptodate bh);
        Buffer.brelse bh (* last reference: freed *))
  in
  check Alcotest.int "buffer_head freed once" 1
    (Trace.count trace (function
      | Event.Free { ptr } -> ptr = !bh_ptr
      | _ -> false))

let test_bh_pinned_by_jh () =
  ignore
    (with_journal (fun journal ->
         let txn = Jbd2.journal_start journal in
         let bh = Buffer.getblk 4 in
         let jh = Jbd2.journal_get_write_access txn bh in
         ignore jh;
         Buffer.brelse bh;
         (* The journal head still pins the buffer. *)
         check Alcotest.bool "bh alive" true bh.Obj.bh_inst.Memory.live;
         Jbd2.journal_stop txn;
         Jbd2.commit_transaction journal;
         Jbd2.checkpoint journal;
         (* Checkpoint released the pin and freed the buffer. *)
         check Alcotest.bool "bh freed after checkpoint" false
           bh.Obj.bh_inst.Memory.live))

(* {2 Pipes, devices, writeback} *)

let test_pipe_ring () =
  ignore
    (with_sb (fun _sb ->
         let pipe = Obj.alloc_pipe () in
         Pipe.pipe_open pipe ~reader:true;
         Pipe.pipe_open pipe ~reader:false;
         Pipe.pipe_write pipe 3;
         check Alcotest.int "ring fills" 3 (Memory.read pipe.Obj.p_inst "nrbufs");
         Pipe.pipe_read pipe 2;
         check Alcotest.int "ring drains" 1 (Memory.read pipe.Obj.p_inst "nrbufs");
         Pipe.pipe_release pipe ~reader:true;
         Pipe.pipe_release pipe ~reader:false;
         Obj.free_pipe pipe))

let test_cdev_registry () =
  ignore
    (with_sb (fun _sb ->
         let cd = Obj.alloc_cdev () in
         Chardev.cdev_add cd 42 1;
         (match Chardev.cdev_lookup 42 with
         | Some found -> check Alcotest.bool "found" true (found == cd)
         | None -> Alcotest.fail "cdev_lookup missed");
         check Alcotest.bool "missing dev" true (Chardev.cdev_lookup 999 = None);
         Chardev.cdev_del cd))

let test_bdev_open_close () =
  ignore
    (with_sb (fun _sb ->
         let bdev = Blockdev.bdget 5 in
         Blockdev.blkdev_get bdev 1;
         check Alcotest.int "openers" 1 (Memory.read bdev.Obj.bd_inst "bd_openers");
         let again = Blockdev.bdget 5 in
         check Alcotest.bool "registry caches by dev" true (again == bdev);
         Blockdev.blkdev_put bdev;
         check Alcotest.int "closed" 0 (Memory.read bdev.Obj.bd_inst "bd_openers")))

let test_writeback_cleans () =
  ignore
    (Kernel.run ~config:quiet ~layouts:Structs.all (fun () ->
         Kernel.spawn "wb" (fun () ->
             let sb = Vfs_super.mount Fs_misc.rootfs in
             let inode = Vfs_inode.iget sb 70 in
             Vfs_inode.mark_inode_dirty inode;
             check Alcotest.int "on the dirty list" 1
               (List.length sb.Obj.s_bdi.Obj.b_dirty);
             Lockdoc_ksim.Bdi.wb_do_writeback sb.Obj.s_bdi;
             check Alcotest.int "dirty list drained" 0
               (List.length sb.Obj.s_bdi.Obj.b_dirty);
             check Alcotest.bool "inode no longer dirty" false
               (Vfs_inode.inode_is_dirty inode);
             Vfs_inode.iput inode;
             Vfs_super.umount sb)))

let () =
  Alcotest.run "subsystems"
    [
      ( "inode",
        [
          Alcotest.test_case "iget caches" `Quick test_iget_caches;
          Alcotest.test_case "unlink evicts" `Quick test_unlink_evicts;
          Alcotest.test_case "LRU resurrection" `Quick test_lru_resurrection;
          Alcotest.test_case "i_state discipline" `Quick test_i_state_writes_locked;
          Alcotest.test_case "i_size seqcount" `Quick test_size_seqcount;
        ] );
      ( "dentry",
        [
          Alcotest.test_case "tree ops" `Quick test_dentry_tree_ops;
          Alcotest.test_case "d_move" `Quick test_d_move_reparents;
          Alcotest.test_case "d_subdirs rules" `Quick test_d_subdirs_rule;
        ] );
      ( "jbd2",
        [
          Alcotest.test_case "handle lifecycle" `Quick test_jbd2_handle_lifecycle;
          Alcotest.test_case "commit drains handles" `Quick
            test_jbd2_commit_waits_for_handles;
          Alcotest.test_case "mined rules" `Quick test_jbd2_rules;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "refcounting" `Quick test_bh_refcounting;
          Alcotest.test_case "pinned by journal head" `Quick test_bh_pinned_by_jh;
        ] );
      ( "devices & pipes",
        [
          Alcotest.test_case "pipe ring" `Quick test_pipe_ring;
          Alcotest.test_case "cdev registry" `Quick test_cdev_registry;
          Alcotest.test_case "bdev open/close" `Quick test_bdev_open_close;
        ] );
      ( "writeback",
        [ Alcotest.test_case "cleans dirty inodes" `Quick test_writeback_cleans ] );
    ]
