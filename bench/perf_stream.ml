(* Streaming benchmark (`dune build @perf`).

   Three questions, one JSON file (BENCH_stream.json):

   1. What does the binary codec cost? Pack (text-model -> LDOCBIN1
      bytes) and unpack (bytes -> model) throughput in events/sec,
      plus bytes/event for the packed form against the text form —
      the wire/disk saving that motivates the format.

   2. What does keeping rules continuously current cost? One online
      derivator is fed the whole trace, freezing the rules at every
      checkpoint along the way; reported as events/sec through
      feed+freeze.

   3. Is streaming actually cheaper than re-running the batch
      pipeline? The same checkpointed question — "what are the rules
      after prefix p?" for each of k checkpoints — answered both ways:
      online (one pass, freeze at each checkpoint) and batch
      (re-import the prefix from scratch and derive_all, per
      checkpoint). Min-of-repeats wall times; the run *fails* (and
      with it @perf) if streaming is slower. The two answers are
      asserted byte-identical first, so the comparison is between
      equivalent computations. Single-threaded on both sides: the win
      comes from avoiding re-scans, not from parallelism.

   Environment knobs: LOCKDOC_PERF_STREAM_SCALE (workload scale,
   default 1), LOCKDOC_PERF_CHECKPOINTS (default 4),
   LOCKDOC_PERF_REPEATS (default 3). *)

module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Report = Lockdoc_core.Report
module Codec = Lockdoc_stream.Codec
module Online = Lockdoc_stream.Online
module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let scale = env_int "LOCKDOC_PERF_STREAM_SCALE" 1
let n_checkpoints = max 1 (env_int "LOCKDOC_PERF_CHECKPOINTS" 4)
let repeats = env_int "LOCKDOC_PERF_REPEATS" 3

let trace =
  lazy
    (let config =
       {
         Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
         Run.scale;
         Run.faults = true;
       }
     in
     fst (Run.benchmark_mix ~config ()))

(* Wall seconds of [f ()], best of [repeats]. *)
let best f =
  let once () =
    let _, c = Obs.Clock.timed f in
    c.Obs.Clock.wall
  in
  let m = ref (once ()) in
  for _ = 2 to repeats do
    let s = once () in
    if s < !m then m := s
  done;
  !m

let prefix trace n = { trace with Trace.events = Array.sub trace.Trace.events 0 n }

(* Rules after each checkpoint, batch style: re-import the prefix from
   scratch and mine. Returns the per-checkpoint rule JSON. *)
let batch_rules trace checkpoints =
  List.map
    (fun n ->
      let store, _ = Import.run (prefix trace n) in
      let dataset = Dataset.of_store store in
      Report.mined_to_json (Derivator.derive_all dataset))
    checkpoints

(* Rules after each checkpoint, streaming style: one online derivator,
   one pass, freeze at each checkpoint. *)
let stream_rules trace checkpoints =
  let onl = Online.create trace.Trace.layouts in
  let next = ref checkpoints in
  let out = ref [] in
  let flush_at n =
    while (match !next with c :: _ -> c = n | [] -> false) do
      next := List.tl !next;
      let _, mined = Online.freeze onl in
      out := Report.mined_to_json mined :: !out
    done
  in
  flush_at 0;
  Array.iteri
    (fun i ev ->
      Online.feed onl ev;
      flush_at (i + 1))
    trace.Trace.events;
  List.rev !out

let () =
  let trace = Lazy.force trace in
  let n_events = Array.length trace.Trace.events in
  Printf.eprintf "perf_stream: scale %d, %d events, %d checkpoint(s)\n%!"
    scale n_events n_checkpoints;
  let text = String.concat "\n" (Trace.to_lines trace) in
  let text_bytes = String.length text + 1 in
  (* Codec throughput and density. *)
  let packed = Codec.encode_trace trace in
  let packed_bytes = String.length packed in
  let pack_s = best (fun () -> ignore (Codec.encode_trace trace)) in
  let unpack_s = best (fun () -> ignore (Codec.decode_string packed)) in
  let reparsed, diags = Codec.decode_string packed in
  assert (diags = []);
  assert (Trace.to_lines reparsed = Trace.to_lines trace);
  let per_sec s = if s > 0. then float_of_int n_events /. s else 0. in
  Printf.eprintf
    "perf_stream: pack %.0f events/s, unpack %.0f events/s, %.1f -> %.1f \
     bytes/event (%.2fx)\n%!"
    (per_sec pack_s) (per_sec unpack_s)
    (float_of_int text_bytes /. float_of_int n_events)
    (float_of_int packed_bytes /. float_of_int n_events)
    (float_of_int text_bytes /. float_of_int packed_bytes);
  (* Streaming vs batch over the same checkpointed question. *)
  let checkpoints =
    List.sort_uniq compare
      (List.init n_checkpoints (fun i ->
           n_events * (i + 1) / n_checkpoints))
  in
  let from_stream = stream_rules trace checkpoints in
  let from_batch = batch_rules trace checkpoints in
  if from_stream <> from_batch then begin
    Printf.eprintf
      "perf_stream: FAIL online rules diverge from batch at a checkpoint\n";
    exit 1
  end;
  let stream_s = best (fun () -> ignore (stream_rules trace checkpoints)) in
  let batch_s = best (fun () -> ignore (batch_rules trace checkpoints)) in
  let speedup = if stream_s > 0. then batch_s /. stream_s else 0. in
  Printf.eprintf
    "perf_stream: streaming %.1fms vs batch %.1fms over %d checkpoint(s) \
     (%.2fx)\n%!"
    (1000. *. stream_s) (1000. *. batch_s) (List.length checkpoints) speedup;
  let ok = stream_s <= batch_s in
  print_endline
    (Json.to_string
       (Json.O
          [
            ("scale", Json.I scale);
            ("events", Json.I n_events);
            ("checkpoints", Json.I (List.length checkpoints));
            ("repeats", Json.I repeats);
            ("text_bytes", Json.I text_bytes);
            ("packed_bytes", Json.I packed_bytes);
            ( "bytes_per_event_text",
              Json.F (float_of_int text_bytes /. float_of_int n_events) );
            ( "bytes_per_event_binary",
              Json.F (float_of_int packed_bytes /. float_of_int n_events) );
            ( "compression_ratio",
              Json.F (float_of_int text_bytes /. float_of_int packed_bytes) );
            ("pack_events_per_sec", Json.F (per_sec pack_s));
            ("unpack_events_per_sec", Json.F (per_sec unpack_s));
            ("online_events_per_sec", Json.F (per_sec stream_s));
            ("streaming_ms", Json.F (1000. *. stream_s));
            ("batch_ms", Json.F (1000. *. batch_s));
            ("speedup_vs_batch", Json.F speedup);
            ( "note",
              Json.S
                "streaming_ms answers the rules after every checkpoint in \
                 one feed+freeze pass; batch_ms re-imports each prefix from \
                 scratch and mines it; outputs are asserted byte-identical \
                 before timing, both single-threaded, min-of-repeats" );
            ("ok", Json.B ok);
          ]));
  if not ok then begin
    Printf.eprintf
      "perf_stream: FAIL streaming (%.1fms) slower than batch (%.1fms)\n"
      (1000. *. stream_s) (1000. *. batch_s);
    exit 1
  end
