(* Sanitizer benchmark (`dune build @perf`).

   Three questions, one JSON file (BENCH_sanitize.json):

   1. Throughput: how many trace events per second does the full
      sanitizer analysis (import + lockset + irq walk) sustain?

   2. Sharding: what does instance-sharding the lockset detector over
      the machine's domains buy over the sequential walk?

   3. Overhead: how much do the two detectors add on top of the plain
      import every other analysis already pays? Asserted under 400% —
      the detectors walk the same access rows the importer created, so
      costing a handful of imports is expected, an order of magnitude
      is a regression.

   All times are min-of-repeats on the seeded fs_bench sanitize trace.
   Environment knobs: LOCKDOC_PERF_SCALE (workload scale, default 8),
   LOCKDOC_PERF_REPEATS (repeats, default 5). *)

module Run = Lockdoc_ksim.Run
module Import = Lockdoc_db.Import
module Lockset = Lockdoc_sanitizer.Lockset
module Irq = Lockdoc_sanitizer.Irq
module Pool = Lockdoc_util.Pool
module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let scale = env_int "LOCKDOC_PERF_SCALE" 8
let repeats = env_int "LOCKDOC_PERF_REPEATS" 5
let max_detect_overhead_pct = 400.

let best f =
  let ms () =
    let _, c = Obs.Clock.timed f in
    c.Obs.Clock.wall *. 1000.
  in
  let best_ms = ref (ms ()) in
  for _ = 2 to repeats do
    let m = ms () in
    if m < !best_ms then best_ms := m
  done;
  !best_ms

let () =
  let jobs = Pool.default_jobs () in
  Printf.eprintf "perf_sanitize: fs_bench scale %d, %d jobs, %d repeats\n"
    scale jobs repeats;
  let trace, _truth = Run.sanitize_trace ~scale ~bugs:true "fs_bench" in
  let events = Array.length trace.Lockdoc_trace.Trace.events in
  let import_ms = best (fun () -> ignore (Import.run trace)) in
  let store, _ = Import.run trace in
  let lockset_seq_ms = best (fun () -> ignore (Lockset.analyse ~jobs:1 store)) in
  let lockset_par_ms =
    best (fun () -> ignore (Lockset.analyse ~jobs store))
  in
  let irq_ms = best (fun () -> ignore (Irq.analyse store)) in
  let detect_ms = lockset_seq_ms +. irq_ms in
  let total_ms = import_ms +. detect_ms in
  let events_per_sec =
    if total_ms > 0. then float_of_int events /. (total_ms /. 1000.) else 0.
  in
  let speedup =
    if lockset_par_ms > 0. then lockset_seq_ms /. lockset_par_ms else 1.
  in
  let detect_overhead_pct =
    if import_ms > 0. then detect_ms /. import_ms *. 100. else 0.
  in
  let ok = detect_overhead_pct < max_detect_overhead_pct in
  Printf.eprintf
    "perf_sanitize: %d events, import %.1fms, lockset %.1fms (seq) \
     %.1fms (-j %d), irq %.1fms\n"
    events import_ms lockset_seq_ms lockset_par_ms jobs irq_ms;
  print_endline
    (Json.to_string
       (Json.O
          [
            ("scale", Json.I scale);
            ("events", Json.I events);
            ("events_per_sec", Json.F events_per_sec);
            ("import_ms", Json.F import_ms);
            ("lockset_seq_ms", Json.F lockset_seq_ms);
            ("lockset_par_ms", Json.F lockset_par_ms);
            ("lockset_jobs", Json.I jobs);
            ("lockset_speedup", Json.F speedup);
            ("irq_ms", Json.F irq_ms);
            ("detect_overhead_pct", Json.F detect_overhead_pct);
            ("detect_overhead_budget_pct", Json.F max_detect_overhead_pct);
            ("repeats", Json.I repeats);
            ("ok", Json.B ok);
          ]));
  if not ok then begin
    Printf.eprintf
      "perf_sanitize: FAIL detector overhead %.0f%% exceeds %.0f%% budget\n"
      detect_overhead_pct max_detect_overhead_pct;
    exit 1
  end
