(* Observability-layer benchmark (`dune build @perf`).

   Two questions, one JSON file (BENCH_obs.json):

   1. Where does the pipeline spend its time? Run the full pipeline on
      the benchmark mix with metrics enabled and report per-phase wall
      and CPU seconds straight from the span accumulators — the same
      numbers `lockdoc profile` prints.

   2. What does metrics recording cost? Time the derive phase (the
      hottest instrumented analysis loop) with recording disabled and
      enabled, min-of-repeats, and assert the overhead stays under 3%.
      A noisy box can flunk a single round, so the measurement retries
      with a growing repeat count before failing the build.

   Environment knobs: LOCKDOC_PERF_SCALE (mix scale, default 8),
   LOCKDOC_PERF_REPEATS (starting repeats, default 5). *)

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let mix_scale = env_int "LOCKDOC_PERF_SCALE" 8
let repeats0 = env_int "LOCKDOC_PERF_REPEATS" 5
let max_overhead_pct = 3.

let best ~repeats f =
  let ms () =
    let _, c = Obs.Clock.timed f in
    c.Obs.Clock.wall *. 1000.
  in
  let best_ms = ref (ms ()) in
  for _ = 2 to repeats do
    let m = ms () in
    if m < !best_ms then best_ms := m
  done;
  !best_ms

let () =
  Printf.eprintf "perf_obs: pipeline phases + metrics overhead (mix scale %d)\n"
    mix_scale;
  Obs.set_enabled true;
  let phase name f = fst (Obs.Span.timed ("perf/" ^ name) f) in
  let trace =
    phase "tracing" (fun () ->
        let config =
          { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
            Run.scale = mix_scale; Run.faults = true }
        in
        fst (Run.benchmark_mix ~config ()))
  in
  let store, _ = phase "import" (fun () -> Import.run trace) in
  let dataset = phase "observations" (fun () -> Dataset.of_store store) in
  let mined = phase "derive" (fun () -> Derivator.derive_all dataset) in
  let _ = phase "violations" (fun () -> Violation.find dataset mined) in
  let snap = Obs.snapshot () in
  let phases =
    List.filter_map
      (fun name ->
        Option.map
          (fun sp ->
            ( name,
              Json.O
                [
                  ("wall_s", Json.F sp.Obs.sp_wall);
                  ("cpu_s", Json.F sp.Obs.sp_cpu);
                ] ))
          (Obs.find_span snap ("perf/" ^ name)))
      [ "tracing"; "import"; "observations"; "derive"; "violations" ]
  in
  (* Overhead: sequential derive, recording off vs on. Retry with a
     tripled repeat count (up to twice) before declaring failure. *)
  let derive () = ignore (Derivator.derive_all dataset) in
  let rec measure attempt repeats =
    Obs.set_enabled false;
    let off_ms = best ~repeats derive in
    Obs.set_enabled true;
    let on_ms = best ~repeats derive in
    let overhead_pct =
      if off_ms > 0. then (on_ms -. off_ms) /. off_ms *. 100. else 0.
    in
    Printf.eprintf
      "perf_obs: derive off %.1fms on %.1fms overhead %.2f%% (repeats %d)\n"
      off_ms on_ms overhead_pct repeats;
    if overhead_pct < max_overhead_pct || attempt >= 3 then
      (off_ms, on_ms, overhead_pct, repeats)
    else measure (attempt + 1) (repeats * 3)
  in
  let off_ms, on_ms, overhead_pct, repeats = measure 1 repeats0 in
  let ok = overhead_pct < max_overhead_pct in
  print_endline
    (Json.to_string
       (Json.O
          [
            ("scale", Json.I mix_scale);
            ("events", Json.I (Array.length trace.Lockdoc_trace.Trace.events));
            ("phases", Json.O phases);
            ("derive_metrics_off_ms", Json.F off_ms);
            ("derive_metrics_on_ms", Json.F on_ms);
            ("overhead_pct", Json.F overhead_pct);
            ("overhead_budget_pct", Json.F max_overhead_pct);
            ("repeats", Json.I repeats);
            ("ok", Json.B ok);
          ]));
  if not ok then begin
    Printf.eprintf
      "perf_obs: FAIL metrics overhead %.2f%% exceeds %.1f%% budget\n"
      overhead_pct max_overhead_pct;
    exit 1
  end
