(* Serve-daemon benchmark (`dune build @perf`).

   Five questions, one JSON file (BENCH_serve.json):

   1. What does multi-client ingest cost? Eight concurrent clients (one
      per workload family, wrapping round) stream their traces frame by
      frame into one sans-IO [Server], interleaved round-robin with
      supervision ticks — the same call pattern the Unix front end
      produces, minus the kernel. Reported: sustained events/sec from
      first frame to last seal.

   2. How long does one rows frame hold the engine? Every
      [Server.on_bytes] call for a rows frame is timed (wall clock);
      the distribution's p50/p99 land in the JSON. This is the stall an
      ill-behaved client could inflict on the select loop, which is why
      admission is O(frame) and analysis is deferred to [step].

   3. What does `--metrics` cost on the serve path? The whole cycle
      runs with recording off and on, min-of-repeats; the overhead must
      stay under budget. Note: the serve path records per-frame
      counters *and* per-batch ingest-latency histograms, so its budget
      (10%) is looser than the pure-analysis 3% in BENCH_obs.json — on
      this workload the absolute cost is microseconds per frame.

   4. Does a seal stall the loop? A dedicated cycle runs the largest
      client on a [Server] whose runner hands the seal job to an
      analysis domain ([Pool.spawn]) — the Unix front end's
      configuration. While the job runs, a second connection pings and
      every round-trip is timed; the ping p99 during the seal is the
      stall the off-loop design exists to eliminate, so it gets a hard
      budget and busting it fails the build.

   5. What does a subscription push cost? One subscribed client streams
      its trace; every [step] that freezes, diffs and pushes a rules
      delta is timed. That p99 is the price of live rule feedback.

   Environment knobs: LOCKDOC_PERF_CLIENTS (default 8),
   LOCKDOC_PERF_SERVE_SCALE (workload scale, default 1),
   LOCKDOC_PERF_REPEATS (starting repeats, default 3). *)

module Frame = Lockdoc_serve.Frame
module Proto = Lockdoc_serve.Proto
module Server = Lockdoc_serve.Server
module Trace = Lockdoc_trace.Trace
module Run = Lockdoc_ksim.Run
module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json
module Pool = Lockdoc_util.Pool

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let n_clients = max 8 (env_int "LOCKDOC_PERF_CLIENTS" 8)
let scale = env_int "LOCKDOC_PERF_SERVE_SCALE" 1
let repeats0 = env_int "LOCKDOC_PERF_REPEATS" 3
let max_overhead_pct = 10.
let batch_rows = 256

let enc m = Frame.encode (Proto.client_to_payload m)

let rec batches n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let b, rest = take n [] l in
      b :: batches n rest

type client = {
  name : string;
  lines : string list array;  (* row batches *)
  rows : int;  (* total row count *)
  events : int;  (* expected events at seal *)
}

let clients =
  lazy
    (let names = Array.of_list Run.workload_names in
     Array.init n_clients (fun i ->
         let name = names.(i mod Array.length names) in
         let trace = Run.workload_trace ~scale name in
         let lines = Trace.to_lines trace in
         {
           name;
           lines = Array.of_list (batches batch_rows lines);
           rows = List.length lines;
           events = Array.length trace.Trace.events;
         }))

(* One full serve cycle: connect every client, stream all frames
   round-robin with a supervision tick per round, seal everyone.
   Returns (wall seconds, frame count, per-frame ms latencies or [||]). *)
let run_cycle ~record_latencies () =
  let cs = Lazy.force clients in
  let cfg =
    {
      Server.default_config with
      max_clients = n_clients + 1;
      queue_bytes = 4 * 1024 * 1024;
      total_queue_bytes = 64 * 1024 * 1024;
    }
  in
  let srv = Server.create ~config:cfg () in
  let now () = Obs.Clock.wall () in
  let t0 = now () in
  let conns =
    Array.mapi
      (fun i c ->
        let cid, _ = Server.accept srv ~now:(now ()) in
        (match
           Server.on_bytes srv ~now:(now ()) cid
             (enc
                (Proto.Hello
                   {
                     version = Proto.version;
                     session = Printf.sprintf "bench-%d-%s" i c.name;
                   }))
         with
        | [ Server.Send (_, Proto.Welcome _) ] -> ()
        | _ -> failwith "bench: hello refused");
        cid)
      cs
  in
  let cursors = Array.make n_clients 0 in
  let next_batch = Array.make n_clients 0 in
  let lat = ref [] in
  let frames = ref 0 in
  let remaining = ref n_clients in
  while !remaining > 0 do
    Array.iteri
      (fun i c ->
        if next_batch.(i) < Array.length c.lines then begin
          let b = c.lines.(next_batch.(i)) in
          let frame = enc (Proto.Rows { start = cursors.(i); lines = b }) in
          let rec push () =
            let s = now () in
            let outs = Server.on_bytes srv ~now:s conns.(i) frame in
            let d = (now () -. s) *. 1000. in
            if record_latencies then lat := d :: !lat;
            incr frames;
            match outs with
            | [] -> ()
            | [ Server.Send (_, Proto.Retry_after _) ] ->
                ignore (Server.step srv ~now:(now ()));
                push ()
            | _ -> failwith "bench: unexpected reply to rows"
          in
          push ();
          cursors.(i) <- cursors.(i) + List.length b;
          next_batch.(i) <- next_batch.(i) + 1;
          if next_batch.(i) = Array.length c.lines then decr remaining
        end)
      cs;
    ignore (Server.step srv ~now:(now ()))
  done;
  Array.iteri
    (fun i c ->
      match
        Server.on_bytes srv ~now:(now ()) conns.(i)
          (enc (Proto.Seal { rows = c.rows }))
      with
      | [ Server.Send (_, Proto.Sealed { events; _ }) ] when events = c.events
        ->
          ()
      | _ -> failwith (Printf.sprintf "bench: client %d did not seal" i))
    cs;
  (now () -. t0, !frames, Array.of_list !lat)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Stream one client's whole trace into [srv] on connection [cid],
   yielding to [step] whenever admission sheds load. *)
let stream_all srv ~now cid c =
  let cursor = ref 0 in
  Array.iter
    (fun b ->
      let frame = enc (Proto.Rows { start = !cursor; lines = b }) in
      let rec push () =
        match Server.on_bytes srv ~now:(now ()) cid frame with
        | [] -> ()
        | [ Server.Send (_, Proto.Retry_after _) ] ->
            ignore (Server.step srv ~now:(now ()));
            push ()
        | _ -> failwith "bench: unexpected reply to rows"
      in
      push ();
      cursor := !cursor + List.length b)
    c.lines

let seal_ping_budget_ms = 25.

(* Returns (seal wall ms, sorted ping ms latencies during the seal). *)
let run_seal_stall () =
  let cs = Lazy.force clients in
  let c =
    Array.fold_left (fun a c -> if c.events > a.events then c else a) cs.(0) cs
  in
  let cfg =
    {
      Server.default_config with
      queue_bytes = 4 * 1024 * 1024;
      total_queue_bytes = 64 * 1024 * 1024;
    }
  in
  let jobs = ref [] in
  let srv =
    Server.create ~config:cfg
      ~runner:(fun f -> jobs := Pool.spawn f :: !jobs)
      ()
  in
  let now () = Obs.Clock.wall () in
  let cid, _ = Server.accept srv ~now:(now ()) in
  (match
     Server.on_bytes srv ~now:(now ()) cid
       (enc (Proto.Hello { version = Proto.version; session = "seal-stall" }))
   with
  | [ Server.Send (_, Proto.Welcome _) ] -> ()
  | _ -> failwith "bench: seal-stall hello refused");
  stream_all srv ~now cid c;
  let pc, _ = Server.accept srv ~now:(now ()) in
  let t_seal = now () in
  (match
     Server.on_bytes srv ~now:(now ()) cid (enc (Proto.Seal { rows = c.rows }))
   with
  | [] -> ()
  | [ Server.Send (_, Proto.Sealed _) ] ->
      failwith "bench: seal ran inline despite the domain runner"
  | _ -> failwith "bench: unexpected reply to seal");
  let pings = ref [] in
  let sealed = ref false in
  while (not !sealed) && now () -. t_seal < 120. do
    let s = now () in
    (match Server.on_bytes srv ~now:s pc (enc Proto.Ping) with
    | [ Server.Send (_, Proto.Pong) ] -> ()
    | _ -> failwith "bench: ping refused during seal");
    pings := (now () -. s) *. 1000. :: !pings;
    List.iter
      (function
        | Server.Send (_, Proto.Sealed { events; _ }) ->
            if events <> c.events then
              failwith "bench: seal-stall wrong event count";
            sealed := true
        | _ -> ())
      (Server.step srv ~now:(now ()))
  done;
  if not !sealed then failwith "bench: seal did not complete within 120s";
  let seal_wall_ms = (now () -. t_seal) *. 1000. in
  List.iter (fun j -> ignore (Pool.await j)) !jobs;
  let lat = Array.of_list !pings in
  Array.sort compare lat;
  (seal_wall_ms, lat)

(* Returns the sorted ms latencies of the steps that pushed a rules
   delta to the subscribed client. *)
let run_push_latency () =
  let cs = Lazy.force clients in
  let c = cs.(0) in
  let cfg =
    {
      Server.default_config with
      queue_bytes = 4 * 1024 * 1024;
      total_queue_bytes = 64 * 1024 * 1024;
      sub_debounce_events = batch_rows;
      sub_min_interval = 0.;
    }
  in
  let srv = Server.create ~config:cfg () in
  let now () = Obs.Clock.wall () in
  let cid, _ = Server.accept srv ~now:(now ()) in
  (match
     Server.on_bytes srv ~now:(now ()) cid
       (enc (Proto.Hello { version = Proto.version; session = "push-bench" }))
   with
  | [ Server.Send (_, Proto.Welcome _) ] -> ()
  | _ -> failwith "bench: push hello refused");
  (match Server.on_bytes srv ~now:(now ()) cid (enc Proto.Subscribe) with
  | [ Server.Send (_, Proto.Info _) ] -> ()
  | _ -> failwith "bench: subscribe refused");
  let cursor = ref 0 in
  let lats = ref [] in
  Array.iter
    (fun b ->
      let rec push_rows () =
        match
          Server.on_bytes srv ~now:(now ()) cid
            (enc (Proto.Rows { start = !cursor; lines = b }))
        with
        | [] -> ()
        | [ Server.Send (_, Proto.Retry_after _) ] ->
            ignore (Server.step srv ~now:(now ()));
            push_rows ()
        | _ -> failwith "bench: unexpected reply to rows"
      in
      push_rows ();
      cursor := !cursor + List.length b;
      let s = now () in
      let outs = Server.step srv ~now:s in
      let d = (now () -. s) *. 1000. in
      if
        List.exists
          (function Server.Send (_, Proto.Info _) -> true | _ -> false)
          outs
      then lats := d :: !lats)
    c.lines;
  (match
     Server.on_bytes srv ~now:(now ()) cid (enc (Proto.Seal { rows = c.rows }))
   with
  | [
      Server.Send (_, Proto.Info _);
      Server.Send (_, Proto.Sealed { events; _ });
    ]
  | [ Server.Send (_, Proto.Sealed { events; _ }) ]
    when events = c.events ->
      ()
  | _ -> failwith "bench: push client did not seal");
  let lat = Array.of_list !lats in
  Array.sort compare lat;
  lat

let () =
  Printf.eprintf "perf_serve: %d clients, scale %d\n%!" n_clients scale;
  let cs = Lazy.force clients in
  let total_events = Array.fold_left (fun a c -> a + c.events) 0 cs in
  (* Measured run: metrics on (the realistic deployment), latencies
     recorded client-side. *)
  Obs.set_enabled true;
  let wall_s, frames, lat = run_cycle ~record_latencies:true () in
  Array.sort compare lat;
  let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
  let events_per_sec =
    if wall_s > 0. then float_of_int total_events /. wall_s else 0.
  in
  Printf.eprintf
    "perf_serve: %d events / %d frames in %.3fs (%.0f events/s, frame p50 \
     %.3fms p99 %.3fms)\n%!"
    total_events frames wall_s events_per_sec p50 p99;
  (* Overhead: the whole cycle, recording off vs on, min-of-repeats.
     Retry with a tripled repeat count (up to twice) before failing. *)
  let best ~repeats f =
    let ms () =
      let _, c = Obs.Clock.timed f in
      c.Obs.Clock.wall *. 1000.
    in
    let best_ms = ref (ms ()) in
    for _ = 2 to repeats do
      let m = ms () in
      if m < !best_ms then best_ms := m
    done;
    !best_ms
  in
  let cycle () = ignore (run_cycle ~record_latencies:false ()) in
  let rec measure attempt repeats =
    Obs.set_enabled false;
    let off_ms = best ~repeats cycle in
    Obs.set_enabled true;
    let on_ms = best ~repeats cycle in
    let overhead_pct =
      if off_ms > 0. then (on_ms -. off_ms) /. off_ms *. 100. else 0.
    in
    Printf.eprintf
      "perf_serve: cycle off %.1fms on %.1fms overhead %.2f%% (repeats %d)\n%!"
      off_ms on_ms overhead_pct repeats;
    if overhead_pct < max_overhead_pct || attempt >= 3 then
      (off_ms, on_ms, overhead_pct, repeats)
    else measure (attempt + 1) (repeats * 3)
  in
  let off_ms, on_ms, overhead_pct, repeats = measure 1 repeats0 in
  Obs.set_enabled true;
  let seal_wall_ms, seal_pings = run_seal_stall () in
  let seal_ping_p50 = percentile seal_pings 0.50
  and seal_ping_p99 = percentile seal_pings 0.99 in
  Printf.eprintf
    "perf_serve: seal %.1fms off-loop, %d pings meanwhile (p50 %.3fms p99 \
     %.3fms, budget %.1fms)\n%!"
    seal_wall_ms (Array.length seal_pings) seal_ping_p50 seal_ping_p99
    seal_ping_budget_ms;
  let push_lat = run_push_latency () in
  let push_p50 = percentile push_lat 0.50
  and push_p99 = percentile push_lat 0.99 in
  Printf.eprintf
    "perf_serve: %d rule pushes (step p50 %.3fms p99 %.3fms)\n%!"
    (Array.length push_lat) push_p50 push_p99;
  let stall_ok = seal_ping_p99 <= seal_ping_budget_ms in
  let ok = overhead_pct < max_overhead_pct && stall_ok in
  print_endline
    (Json.to_string
       (Json.O
          [
            ("clients", Json.I n_clients);
            ("scale", Json.I scale);
            ("total_events", Json.I total_events);
            ("frames", Json.I frames);
            ("batch_rows", Json.I batch_rows);
            ("wall_s", Json.F wall_s);
            ("events_per_sec", Json.F events_per_sec);
            ("frame_p50_ms", Json.F p50);
            ("frame_p99_ms", Json.F p99);
            ("serve_metrics_off_ms", Json.F off_ms);
            ("serve_metrics_on_ms", Json.F on_ms);
            ("overhead_pct", Json.F overhead_pct);
            ("overhead_budget_pct", Json.F max_overhead_pct);
            ("repeats", Json.I repeats);
            ("seal_wall_ms", Json.F seal_wall_ms);
            ("seal_pings", Json.I (Array.length seal_pings));
            ("seal_ping_p50_ms", Json.F seal_ping_p50);
            ("seal_ping_p99_ms", Json.F seal_ping_p99);
            ("seal_ping_budget_ms", Json.F seal_ping_budget_ms);
            ("push_count", Json.I (Array.length push_lat));
            ("push_p50_ms", Json.F push_p50);
            ("push_p99_ms", Json.F push_p99);
            ( "note",
              Json.S
                "frame latency is the engine's on_bytes stall (admission + \
                 journal, analysis deferred to step); overhead compares the \
                 full cycle with metrics recording off vs on, min-of-repeats, \
                 and is noise-dominated at this frame cost; seal_ping_p99 is \
                 the loop stall a concurrent client sees while a seal runs on \
                 an analysis domain; push_p99 is the step cost of a \
                 freeze+diff subscription push" );
            ("ok", Json.B ok);
          ]));
  if not ok then begin
    if overhead_pct >= max_overhead_pct then
      Printf.eprintf
        "perf_serve: FAIL metrics overhead %.2f%% exceeds %.1f%% budget\n"
        overhead_pct max_overhead_pct;
    if not stall_ok then
      Printf.eprintf
        "perf_serve: FAIL ping p99 %.3fms during seal exceeds %.1fms budget \
         (the seal is stalling the loop)\n"
        seal_ping_p99 seal_ping_budget_ms;
    exit 1
  end
