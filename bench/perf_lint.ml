(* Static-analysis benchmark (`dune build @perf`).

   Three questions, one JSON file (BENCH_lint.json):

   1. Preflight: is the whole lint report — rendered text and JSON —
      byte-identical between `-j 1` and `-j 4`? The parallel fixpoint
      is only a legal optimisation if the answer never changes; the
      bench refuses to time a nondeterministic analysis.

   2. Throughput: how many IR functions per second does the full
      whole-program summary fixpoint (effects + entries + witnesses +
      cycles + irq/sleep lint) sustain?

   3. Sharding: what does running the Jacobi rounds over the
      machine's domains buy over the sequential fixpoint? Rounds are
      synchronised, so the speedup is bounded by the per-round
      barrier — reported, not asserted.

   All times are min-of-repeats; the analysis input is the static IR
   itself, so there is no trace scale knob — LOCKDOC_PERF_REPEATS
   (default 5) is the only environment knob. The cross-validation
   timing uses the seeded fs_bench trace at scale 1, matching the
   `lockdoc lint` default. *)

module Run = Lockdoc_ksim.Run
module Summary = Lockdoc_static.Summary
module Lint = Lockdoc_static.Lint
module Pool = Lockdoc_util.Pool
module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json
module Report = Lockdoc_core.Report

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let repeats = env_int "LOCKDOC_PERF_REPEATS" 5

let best f =
  let ms () =
    let _, c = Obs.Clock.timed f in
    c.Obs.Clock.wall *. 1000.
  in
  let best_ms = ref (ms ()) in
  for _ = 2 to repeats do
    let m = ms () in
    if m < !best_ms then best_ms := m
  done;
  !best_ms

let () =
  let jobs = max 2 (Pool.default_jobs ()) in
  Printf.eprintf "perf_lint: %d jobs, %d repeats\n" jobs repeats;
  let trace = Run.workload_trace ~seed:7 ~scale:1 "fs_bench" in
  (* Preflight: the whole report must be byte-identical across -j. *)
  let report_bytes j =
    let r = Lint.run ~jobs:j ~workload:"fs_bench" trace in
    (Lint.render r, Report.to_string (Lint.to_json r))
  in
  let text1, json1 = report_bytes 1 in
  let text4, json4 = report_bytes 4 in
  let identical = text1 = text4 && json1 = json4 in
  if not identical then
    Printf.eprintf "perf_lint: FAIL -j 1 and -j 4 reports differ\n";
  let s = Summary.analyse () in
  let summary_seq_ms = best (fun () -> ignore (Summary.analyse ())) in
  let summary_par_ms = best (fun () -> ignore (Summary.analyse ~jobs ())) in
  let lint_ms =
    best (fun () -> ignore (Lint.run ~jobs ~workload:"fs_bench" trace))
  in
  let fns_per_sec =
    if summary_seq_ms > 0. then
      float_of_int s.Summary.functions /. (summary_seq_ms /. 1000.)
    else 0.
  in
  let speedup =
    if summary_par_ms > 0. then summary_seq_ms /. summary_par_ms else 1.
  in
  Printf.eprintf
    "perf_lint: %d fns, %d IR nodes, summary %.1fms (seq) %.1fms (-j %d), \
     lint %.1fms\n"
    s.Summary.functions s.Summary.ir_nodes summary_seq_ms summary_par_ms jobs
    lint_ms;
  print_endline
    (Json.to_string
       (Json.O
          [
            ("functions", Json.I s.Summary.functions);
            ("wild_functions", Json.I s.Summary.wild_functions);
            ("ir_nodes", Json.I s.Summary.ir_nodes);
            ("effect_rounds", Json.I s.Summary.effect_rounds);
            ("entry_rounds", Json.I s.Summary.entry_rounds);
            ("access_sites", Json.I (List.length s.Summary.sites));
            ("order_edges", Json.I (List.length s.Summary.edges));
            ("summary_seq_ms", Json.F summary_seq_ms);
            ("summary_par_ms", Json.F summary_par_ms);
            ("summary_jobs", Json.I jobs);
            ("summary_speedup", Json.F speedup);
            ("functions_per_sec", Json.F fns_per_sec);
            ("lint_ms", Json.F lint_ms);
            ("byte_identical", Json.B identical);
            ("repeats", Json.I repeats);
            ("ok", Json.B identical);
          ]));
  if not identical then exit 1
