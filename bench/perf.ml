(* Sequential-vs-parallel analysis comparison (`dune build @perf`).

   For every isolated benchmark family plus the full benchmark mix
   (the largest workload), times the derive+check phase — rule
   derivation plus counterexample extraction — sequentially and on a
   domain pool, verifies the outputs are byte-identical, and emits one
   JSON record per workload on stdout (the @perf alias redirects it to
   BENCH_parallel.json). Progress goes to stderr.

   Environment knobs: LOCKDOC_PERF_JOBS (default 4), LOCKDOC_PERF_SCALE
   (mix scale, default 8), LOCKDOC_PERF_REPEATS (default 3; the minimum
   wall time over the repeats is reported). *)

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation
module Report = Lockdoc_core.Report
module Pool = Lockdoc_util.Pool
module Obs = Lockdoc_obs.Obs

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let jobs = env_int "LOCKDOC_PERF_JOBS" 4
let mix_scale = env_int "LOCKDOC_PERF_SCALE" 8
let repeats = env_int "LOCKDOC_PERF_REPEATS" 3

(* Wall-clock milliseconds through the shared Obs clock, so the bench
   and the CLI's --metrics snapshots measure with the same primitive. *)
let wall f =
  let r, c = Obs.Clock.timed f in
  (r, c.Obs.Clock.wall *. 1000.)

(* Minimum wall time over [repeats] runs — the usual noise filter. *)
let best f =
  let result, ms = wall f in
  let best_ms = ref ms in
  for _ = 2 to repeats do
    let _, ms = wall f in
    if ms < !best_ms then best_ms := ms
  done;
  (result, !best_ms)

let fingerprint mined violations =
  Digest.to_hex
    (Digest.string
       (Report.mined_to_json mined ^ "\x00" ^ Report.violations_to_json violations))

let measure name trace =
  Printf.eprintf "perf: %-10s %7d events: " name
    (Array.length trace.Lockdoc_trace.Trace.events);
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  let derive_check j () =
    let mined = Derivator.derive_all ~jobs:j dataset in
    let violations = Violation.find ~jobs:j dataset mined in
    (mined, violations)
  in
  let (mined_s, violations_s), seq_ms = best (derive_check 1) in
  let (mined_p, violations_p), par_ms = best (derive_check jobs) in
  let identical =
    fingerprint mined_s violations_s = fingerprint mined_p violations_p
  in
  let speedup = if par_ms > 0. then seq_ms /. par_ms else 0. in
  Printf.eprintf "seq %.1fms par %.1fms speedup %.2fx%s\n" seq_ms par_ms
    speedup
    (if identical then "" else "  OUTPUT MISMATCH");
  Report.(
    O
      [
        ("workload", S name);
        ("events", I (Array.length trace.Lockdoc_trace.Trace.events));
        ("groups", I (List.length mined_s));
        ("violations", I (List.length violations_s));
        ("seq_ms", F seq_ms);
        ("par_ms", F par_ms);
        ("jobs", I jobs);
        ("cores", I (Domain.recommended_domain_count ()));
        ("speedup", F speedup);
        ("identical", I (if identical then 1 else 0));
      ])

let () =
  let cores = Domain.recommended_domain_count () in
  Printf.eprintf
    "perf: derive+check sequential vs -j %d (repeats %d, mix scale %d, %d \
     core(s))\n"
    jobs repeats mix_scale cores;
  if cores < jobs then
    Printf.eprintf
      "perf: note: only %d hardware core(s) — domains time-slice, expect \
       speedup ~1.0x; the differential suite (test_parallel) is the \
       meaningful check here\n"
      cores;
  let family_rows =
    List.map
      (fun name -> measure name (Run.workload_trace ~seed:11 name))
      Run.workload_names
  in
  let mix_trace =
    let config =
      { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
        Run.scale = mix_scale; Run.faults = true }
    in
    fst (Run.benchmark_mix ~config ())
  in
  let mix_row = measure "mix" mix_trace in
  print_endline (Report.to_string (Report.L (family_rows @ [ mix_row ])))
