(* Counterexample-replay benchmark (`dune build @perf`).

   Three questions, one JSON file (BENCH_replay.json):

   1. Throughput: how many directed schedules per second does the
      replay engine explore, end to end (trace + findings + search)?

   2. Convergence: how many directed schedules does it take, on
      average, to confirm a seeded site? The search arms breakpoints in
      occurrence order, so this should stay in low single digits — a
      blow-up means the window/stride heuristics regressed.

   3. Triage value: aggregate precision of the finding set before and
      after replay triage, over every workload family. The whole point
      of the engine is the post column reading 1.0.

   Environment knobs: LOCKDOC_PERF_REPEATS (repeats, default 3). *)

module Run = Lockdoc_ksim.Run
module Replay = Lockdoc_sanitizer.Replay
module Crossval = Lockdoc_sanitizer.Crossval
module Obs = Lockdoc_obs.Obs
module Json = Lockdoc_obs.Json

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Lockdoc_util.Numarg.positive s with Ok n -> n | Error _ -> default)
  | None -> default

let repeats = env_int "LOCKDOC_PERF_REPEATS" 3

let () =
  Printf.eprintf "perf_replay: %d famil(ies), %d repeats\n"
    (List.length Run.workload_names)
    repeats;
  let run_all () = List.map (fun w -> Replay.run ~bugs:true w) Run.workload_names in
  (* min-of-repeats wall time for the full sweep; the reports are
     deterministic, so keep the last batch for the metrics *)
  let best_ms = ref infinity and reports = ref [] in
  for _ = 1 to repeats do
    let rs, c = Obs.Clock.timed run_all in
    let ms = c.Obs.Clock.wall *. 1000. in
    if ms < !best_ms then best_ms := ms;
    reports := rs
  done;
  let reports = !reports in
  let schedules =
    List.fold_left (fun acc r -> acc + r.Replay.r_schedules) 0 reports
  in
  let schedules_per_sec =
    if !best_ms > 0. then float_of_int schedules /. (!best_ms /. 1000.) else 0.
  in
  let confirmed_schedules =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun (o : Replay.outcome) ->
            match o.Replay.o_verdict with
            | Replay.Confirmed _ -> Some o.Replay.o_schedules
            | Replay.Refuted _ -> None)
          r.Replay.r_outcomes)
      reports
  in
  let mean_to_confirm =
    match confirmed_schedules with
    | [] -> 0.
    | l ->
        float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let precision tp fp =
    if tp + fp = 0 then 1. else float_of_int tp /. float_of_int (tp + fp)
  in
  let pre_tp =
    sum (fun r ->
        r.Replay.r_races_pre.Crossval.cv_tp + r.Replay.r_irq_pre.Crossval.cv_tp)
  in
  let pre_fp =
    sum (fun r ->
        r.Replay.r_races_pre.Crossval.cv_fp + r.Replay.r_irq_pre.Crossval.cv_fp)
  in
  let post_tp =
    sum (fun r ->
        r.Replay.r_races_post.Crossval.cv_tp
        + r.Replay.r_irq_post.Crossval.cv_tp)
  in
  let post_fp =
    sum (fun r ->
        r.Replay.r_races_post.Crossval.cv_fp
        + r.Replay.r_irq_post.Crossval.cv_fp)
  in
  let pre_precision = precision pre_tp pre_fp in
  let post_precision = precision post_tp post_fp in
  (* the engine's reason to exist: triage must not lose a true positive
     and must end at precision 1.0 *)
  let ok = post_precision = 1.0 && post_tp = pre_tp in
  Printf.eprintf
    "perf_replay: %d schedule(s) in %.1fms (%.0f/s), mean %.1f to confirm, \
     precision %.2f -> %.2f\n"
    schedules !best_ms schedules_per_sec mean_to_confirm pre_precision
    post_precision;
  print_endline
    (Json.to_string
       (Json.O
          [
            ("families", Json.I (List.length Run.workload_names));
            ("schedules", Json.I schedules);
            ("sweep_ms", Json.F !best_ms);
            ("schedules_per_sec", Json.F schedules_per_sec);
            ("confirmed", Json.I (List.length confirmed_schedules));
            ("mean_schedules_to_confirmation", Json.F mean_to_confirm);
            ("triage_precision_pre", Json.F pre_precision);
            ("triage_precision_post", Json.F post_precision);
            ("repeats", Json.I repeats);
            ("ok", Json.B ok);
          ]));
  if not ok then begin
    Printf.eprintf
      "perf_replay: FAIL post-triage precision %.2f (tp %d -> %d)\n"
      post_precision pre_tp post_tp;
    exit 1
  end
