(* Benchmark harness.

   Running `dune exec bench/main.exe` regenerates every table and figure
   of the paper's evaluation (Fig. 1, Tab. 1–8, Fig. 7, Fig. 8, the
   Sec. 7.2 statistics), prints the ablation studies from DESIGN.md, and
   finishes with Bechamel micro-benchmarks of the analysis pipeline
   phases.

   `dune exec bench/main.exe -- tab5 fig8` restricts to specific ids;
   `--no-micro` / `--no-ablations` skip those sections. *)

module Registry = Lockdoc_experiments.Registry
module Context = Lockdoc_experiments.Context
module Ablation = Lockdoc_experiments.Ablation
module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Hypothesis = Lockdoc_core.Hypothesis
module Rule = Lockdoc_core.Rule

let hr = String.make 72 '='

let section title = Printf.printf "\n%s\n%s\n%s\n\n" hr title hr

(* {2 Experiment regeneration} *)

(* Ablations selectable by id alongside the registry's tables/figures
   (they also all print in the default `Ablation studies` section). *)
let ablations =
  [
    ("ablation-irq", Ablation.render_irq);
    ("ablation-wor", Ablation.render_wor);
    ("ablation-selection", Ablation.render_selection);
    ("ablation-subclass", Ablation.render_subclass);
    ("ablation-sides", Ablation.render_sides);
    ("ablation-corruption", Ablation.render_corruption);
  ]

let run_experiments ctx ids =
  List.iter
    (fun id ->
      match (Registry.find id, List.assoc_opt id ablations) with
      | Some e, _ ->
          section (Printf.sprintf "[%s] %s" e.Registry.id e.Registry.title);
          print_endline (e.Registry.render ctx)
      | None, Some render ->
          section (Printf.sprintf "[%s]" id);
          print_endline (render (Lazy.force ctx))
      | None, None -> Printf.eprintf "unknown experiment id %s\n" id)
    ids

(* {2 Bechamel micro-benchmarks} *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  (* Shared inputs, prepared once. *)
  let config =
    { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
      Run.scale = 2; Run.faults = true }
  in
  let trace, _ = Run.benchmark_mix ~config () in
  let corrupted =
    let module Trace = Lockdoc_trace.Trace in
    let lines, _ =
      Lockdoc_trace.Corrupt.corrupt ~seed:17 (Trace.to_lines trace)
    in
    fst (Trace.read_lines ~mode:Trace.Lenient lines)
  in
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  let clock_trace = Lockdoc_ksim.Clock_example.run () in
  let durable_checkpoint =
    max 1 (Array.length trace.Lockdoc_trace.Trace.events / 4)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let with_fresh_dir f =
    let dir = Filename.temp_file "lockdoc_bench_durable" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let obs = Dataset.by_member dataset "inode:ext4" ~member:"i_state" ~kind:Rule.W in
  let mined = Derivator.derive_all dataset in
  let par_jobs = 4 in
  let tests =
    [
      Test.make ~name:"trace: benchmark mix (scale 1)"
        (Staged.stage (fun () -> ignore (Run.quick ~seed:3 ())));
      Test.make ~name:"trace: clock example"
        (Staged.stage (fun () -> ignore (Lockdoc_ksim.Clock_example.run ())));
      Test.make ~name:"import: benchmark trace"
        (Staged.stage (fun () -> ignore (Import.run trace)));
      Test.make ~name:"import: benchmark trace (lenient)"
        (Staged.stage (fun () ->
             ignore (Import.run ~mode:Import.Lenient trace)));
      Test.make ~name:"import: corrupted trace (lenient)"
        (Staged.stage (fun () ->
             ignore (Import.run ~mode:Import.Lenient corrupted)));
      (* Durability overhead: same trace, with WAL + checkpoints. A
         fresh directory per iteration so every run pays the full
         fresh-import cost. *)
      Test.make ~name:"import: durable (wal sync=1, 4 checkpoints)"
        (Staged.stage (fun () ->
             with_fresh_dir (fun dir ->
                 ignore
                   (Lockdoc_db.Durable.import ~dir
                      ~checkpoint_every:durable_checkpoint trace))));
      Test.make ~name:"import: durable (wal sync=256, 4 checkpoints)"
        (Staged.stage (fun () ->
             with_fresh_dir (fun dir ->
                 ignore
                   (Lockdoc_db.Durable.import ~dir ~wal_sync_every:256
                      ~checkpoint_every:durable_checkpoint trace))));
      Test.make ~name:"check: stream invariants"
        (Staged.stage (fun () ->
             ignore (Lockdoc_trace.Check.run trace)));
      Test.make ~name:"import: clock trace"
        (Staged.stage (fun () -> ignore (Import.run clock_trace)));
      Test.make ~name:"observations: fold dataset"
        (Staged.stage (fun () -> ignore (Dataset.of_store store)));
      Test.make ~name:"derive: all types"
        (Staged.stage (fun () -> ignore (Derivator.derive_all dataset)));
      (* Same work on a domain pool; `dune build @perf` reports the
         speedup on the large workload mix. *)
      Test.make ~name:(Printf.sprintf "derive: all types (-j %d)" par_jobs)
        (Staged.stage (fun () ->
             ignore (Derivator.derive_all ~jobs:par_jobs dataset)));
      Test.make ~name:"violations: scan mined rules"
        (Staged.stage (fun () ->
             ignore (Lockdoc_core.Violation.find dataset mined)));
      Test.make
        ~name:(Printf.sprintf "violations: scan mined rules (-j %d)" par_jobs)
        (Staged.stage (fun () ->
             ignore (Lockdoc_core.Violation.find ~jobs:par_jobs dataset mined)));
      Test.make
        ~name:(Printf.sprintf "families: 6 workload pipelines (-j %d)" par_jobs)
        (Staged.stage (fun () ->
             ignore (Context.families ~jobs:par_jobs ())));
      Test.make ~name:"derive: struct inode merged"
        (Staged.stage (fun () -> ignore (Derivator.derive_merged dataset "inode")));
      Test.make ~name:"hypotheses: enumerate one member"
        (Staged.stage (fun () -> ignore (Hypothesis.enumerate obs)));
      Test.make ~name:"fig1: generate+scan one release"
        (Staged.stage (fun () ->
             let p =
               Lockdoc_kstats.Model.point
                 { Lockdoc_kstats.Model.major = 3; minor = 0 }
             in
             ignore (Lockdoc_kstats.Scan.scan_files (Lockdoc_kstats.Gen.generate p))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (value :: _) -> value
            | Some [] | None -> nan
          in
          Printf.printf "  %-42s %14.1f ns/run\n" name ns)
        analysed)
    tests

(* {2 Entry point} *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let no_ablations = List.mem "--no-ablations" args in
  let ids = List.filter (fun a -> String.length a > 0 && a.[0] <> '-') args in
  let ids = if ids = [] then Registry.ids else ids in
  let ctx = lazy (Context.create ~scale:8 ~seed:42 ()) in
  run_experiments ctx ids;
  if not no_ablations then begin
    section "Ablation studies (DESIGN.md section 5)";
    print_endline (Ablation.render_all (Lazy.force ctx));
    section "Extension: cross-object protection relations (paper Sec. 8)";
    print_endline
      (Lockdoc_core.Relations.render
         (Lockdoc_core.Relations.analyse (Lazy.force ctx).Context.mined));
    section "Baseline: lockmeter-style lock statistics (paper Sec. 3.2)";
    let c = Lazy.force ctx in
    print_endline
      (Lockdoc_core.Lockmeter.render
         (Lockdoc_core.Lockmeter.analyse c.Context.trace c.Context.store))
  end;
  if not no_micro then begin
    section "Bechamel micro-benchmarks (pipeline phases)";
    microbenches ()
  end
