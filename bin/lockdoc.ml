(** lockdoc — command-line front end.

    Subcommands follow the paper's pipeline (Fig. 5): [trace] records an
    execution of the simulated kernel, [import] post-processes a trace,
    [derive]/[doc]/[check]/[violations] are the phase-❷/❸ tools, and
    [repro] regenerates the evaluation tables and figures. *)

open Cmdliner

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Trace = Lockdoc_trace.Trace
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Derivator = Lockdoc_core.Derivator
module Docgen = Lockdoc_core.Docgen
module Violation = Lockdoc_core.Violation
module Registry = Lockdoc_experiments.Registry
module Context = Lockdoc_experiments.Context
module Obs = Lockdoc_obs.Obs
module Numarg = Lockdoc_util.Numarg
module Codec = Lockdoc_stream.Codec

(* {2 Checked numeric converters}

   Bare [int]/[float] converters accept junk like "0x" leniently or
   produce terse messages; these reject with a one-line diagnostic
   (cmdliner turns [`Msg] into a usage error and a non-zero exit). *)

let conv_checked ~docv pp parse =
  Arg.conv ~docv
    ((fun s -> Result.map_error (fun e -> `Msg e) (parse s)), pp)

let checked_int = conv_checked ~docv:"N" Format.pp_print_int Numarg.int_arg
let positive_int = conv_checked ~docv:"N" Format.pp_print_int Numarg.positive

let non_negative_int =
  conv_checked ~docv:"N" Format.pp_print_int Numarg.non_negative

let fraction_float =
  conv_checked ~docv:"T" Format.pp_print_float Numarg.fraction

let positive_float =
  conv_checked ~docv:"SECONDS" Format.pp_print_float Numarg.positive_float

(* HOST:PORT for the TCP transport. The split is on the last colon so
   a future bracketed-IPv6 host still parses a numeric port. *)
let hostport =
  conv_checked ~docv:"HOST:PORT"
    (fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)
    (fun s ->
      match String.rindex_opt s ':' with
      | None | Some 0 -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
      | Some i -> (
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
          | Some p -> Error (Printf.sprintf "port %d out of range 0-65535" p)
          | None -> Error (Printf.sprintf "bad port %S in %S" port s)))

(* {2 Common options} *)

let scale_arg =
  Arg.(value & opt positive_int 8 & info [ "scale" ] ~docv:"N"
         ~doc:"Workload iteration multiplier (trace volume).")

let seed_arg =
  Arg.(value & opt checked_int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"PRNG seed; runs are deterministic per seed.")

let tac_arg =
  Arg.(value & opt fraction_float 0.9 & info [ "tac" ] ~docv:"T"
         ~doc:"Acceptance threshold for hypothesis selection, in [0,1].")

let jobs_arg =
  Arg.(value & opt (some positive_int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Analysis domains (a positive integer). The default uses the \
               recommended domain count of this machine; 1 forces the \
               sequential path. The output is bit-identical for every \
               $(docv).")

let resolve_jobs = function
  | None -> Lockdoc_util.Pool.default_jobs ()
  | Some j -> j

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Record internal metrics (counters, histograms, spans) during \
               the run and write a JSON snapshot to $(docv) on exit. Never \
               changes analysis output bytes.")

(* Commands exit through [Stdlib.exit] on both success and failure
   paths, which would skip a [Fun.protect] finaliser — so the snapshot
   write is registered as an [at_exit] handler instead and runs on
   every termination path. *)
let with_metrics path f =
  match path with
  | None -> f ()
  | Some path ->
      Obs.set_enabled true;
      Obs.write_on_exit path;
      f ()

let trace_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
         ~doc:"Trace file produced by $(b,lockdoc trace).")

let type_arg =
  Arg.(value & opt (some string) None & info [ "type" ] ~docv:"KEY"
         ~doc:"Restrict to one type key (e.g. inode:ext4, dentry).")

let mode_arg =
  let strict =
    (Import.Strict, Arg.info [ "strict" ]
       ~doc:"Abort on the first fatal trace anomaly (default).")
  in
  let lenient =
    (Import.Lenient, Arg.info [ "lenient" ]
       ~doc:"Recover from trace anomalies, count them, and keep going.")
  in
  Arg.(value & vflag Import.Strict [ strict; lenient ])

let run_config scale seed =
  { Run.kernel = { Kernel.default_config with Kernel.seed };
    Run.scale = scale; Run.faults = true }

let reader_mode = function
  | Import.Strict -> Trace.Strict
  | Import.Lenient -> Trace.Lenient

let read_file_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Packed (LDOCBIN1) traces are auto-detected by magic; [--binary]
   forces the binary decoder (a garbled magic then fails loudly instead
   of silently misparsing the file as text rows). *)
let load_trace ?(binary = false) mode path =
  let trace, diags =
    if binary || Codec.file_is_binary path then
      Codec.decode_string ~mode:(reader_mode mode) ~file:path
        (read_file_bytes path)
    else Trace.read ~mode:(reader_mode mode) path
  in
  List.iter
    (fun d -> Printf.eprintf "lockdoc: %s\n" (Lockdoc_trace.Diag.to_string d))
    diags;
  trace

(* Strict-mode readers/importers raise on the first fatal anomaly; turn
   that into a proper error message instead of an uncaught exception. *)
let or_fail f =
  try f ()
  with Trace.Invalid d ->
    Printf.eprintf "lockdoc: fatal trace anomaly: %s\n"
      (Lockdoc_trace.Diag.to_string d);
    Printf.eprintf "lockdoc: rerun with --lenient (or `lockdoc fsck`) to \
                    recover and survey the damage\n";
    exit 1

let load_dataset ?(mode = Import.Strict) ?binary path =
  or_fail @@ fun () ->
  let trace = load_trace ?binary mode path in
  let store, stats = Import.run ~mode trace in
  (Dataset.of_store store, stats)

(* {2 trace} *)

let trace_cmd =
  let output =
    Arg.(value & opt string "lockdoc.trace" & info [ "o"; "output" ]
           ~docv:"FILE" ~doc:"Output trace file.")
  in
  let run scale seed output metrics =
    with_metrics metrics @@ fun () ->
    let trace, _cov = Run.benchmark_mix ~config:(run_config scale seed) () in
    Trace.save output trace;
    Printf.printf "wrote %d events to %s\n"
      (Array.length trace.Trace.events) output
  in
  Cmd.v (Cmd.info "trace" ~doc:"Run the benchmark mix and record a trace")
    Term.(const run $ scale_arg $ seed_arg $ output $ metrics_arg)

(* {2 import} *)

let import_cmd =
  let durable_arg =
    Arg.(value & opt (some string) None & info [ "durable" ] ~docv:"DIR"
           ~doc:"Import durably: write-ahead-log every store operation and \
                 checkpoint into $(docv). A crashed import resumes from the \
                 last checkpoint when rerun with the same $(docv).")
  in
  let checkpoint_arg =
    Arg.(value & opt positive_int 50_000 & info [ "checkpoint-every" ]
           ~docv:"N" ~doc:"Events between checkpoints (with --durable).")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ]
           ~doc:"Force the packed (LDOCBIN1) decoder. Packed traces are \
                 auto-detected by magic anyway; the flag turns a damaged \
                 magic into a loud decode failure instead of a text \
                 misparse.")
  in
  let run mode binary durable checkpoint_every path metrics =
    with_metrics metrics @@ fun () ->
    match durable with
    | None ->
        let _, stats = load_dataset ~mode ~binary path in
        Format.printf "%a@." Import.pp_stats stats
    | Some dir ->
        or_fail @@ fun () ->
        let trace = load_trace ~binary mode path in
        let _, stats, progress =
          Lockdoc_db.Durable.import ~dir ~checkpoint_every ~mode
            ~trace_file:path trace
        in
        if progress.Lockdoc_db.Durable.pr_resumed_from > 0 then
          Printf.printf "resumed from event %d\n"
            progress.Lockdoc_db.Durable.pr_resumed_from;
        Printf.printf "%d checkpoint(s), %d WAL record(s) -> %s\n"
          progress.Lockdoc_db.Durable.pr_checkpoints
          progress.Lockdoc_db.Durable.pr_wal_records dir;
        Format.printf "%a@." Import.pp_stats stats
  in
  Cmd.v (Cmd.info "import" ~doc:"Post-process a trace and print statistics")
    Term.(
      const run $ mode_arg $ binary_arg $ durable_arg $ checkpoint_arg
      $ trace_file_arg $ metrics_arg)

(* {2 pack / unpack} *)

let pack_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: TRACE.bin).")
  in
  let segment_arg =
    Arg.(value & opt positive_int (64 * 1024) & info [ "segment-bytes" ]
           ~docv:"N"
           ~doc:"Target CRC segment size; smaller segments lose less to a \
                 corrupt frame, larger ones amortize framing better.")
  in
  let run mode segment_bytes path output metrics =
    with_metrics metrics @@ fun () ->
    or_fail @@ fun () ->
    let trace = load_trace mode path in
    let packed = Codec.encode_trace ~segment_bytes trace in
    let out = match output with Some o -> o | None -> path ^ ".bin" in
    let oc = open_out_bin out in
    output_string oc packed;
    close_out oc;
    let n = Array.length trace.Trace.events in
    let text_bytes =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> in_channel_length ic)
    in
    Printf.printf "packed %d event(s): %d -> %d bytes (%.2fx, %.1f \
                   bytes/event) -> %s\n"
      n text_bytes (String.length packed)
      (if packed = "" then 0.
       else float_of_int text_bytes /. float_of_int (String.length packed))
      (if n = 0 then 0. else float_of_int (String.length packed) /. float_of_int n)
      out
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Encode a trace into the compact LDOCBIN1 binary format: \
          varint/delta-coded events with interned strings in CRC-protected \
          segments.")
    Term.(
      const run $ mode_arg $ segment_arg $ trace_file_arg $ output
      $ metrics_arg)

let unpack_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: TRACE.trace).")
  in
  let run mode path output metrics =
    with_metrics metrics @@ fun () ->
    or_fail @@ fun () ->
    if not (Codec.file_is_binary path) then begin
      Printf.eprintf "lockdoc: %s is not a packed (LDOCBIN1) trace\n" path;
      exit 1
    end;
    let trace = load_trace ~binary:true mode path in
    let out = match output with Some o -> o | None -> path ^ ".trace" in
    Trace.save out trace;
    Printf.printf "unpacked %d layout(s), %d event(s) -> %s\n"
      (List.length trace.Trace.layouts)
      (Array.length trace.Trace.events)
      out
  in
  Cmd.v
    (Cmd.info "unpack"
       ~doc:"Decode a packed (LDOCBIN1) trace back into the text format.")
    Term.(const run $ mode_arg $ trace_file_arg $ output $ metrics_arg)

(* {2 recover} *)

let recover_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Durable directory written by $(b,lockdoc import --durable).")
  in
  let derive_arg =
    Arg.(value & flag & info [ "derive" ]
           ~doc:"Also mine and print locking rules from the recovered store.")
  in
  let run dir derive tac metrics =
    with_metrics metrics @@ fun () ->
    let module Durable = Lockdoc_db.Durable in
    let module Store = Lockdoc_db.Store in
    let r = Durable.recover ~dir in
    (match r.Durable.r_snapshot with
    | Some s -> Printf.printf "snapshot: %s\n" s
    | None -> Printf.printf "snapshot: none (replaying WAL from scratch)\n");
    Printf.printf "wal: %d record(s) replayed up to lsn %d\n"
      r.Durable.r_replayed r.Durable.r_wal_lsn;
    (match r.Durable.r_torn with
    | Some reason -> Printf.printf "wal tail: %s (truncated there)\n" reason
    | None -> Printf.printf "wal tail: clean\n");
    Printf.printf "state: %s"
      (if r.Durable.r_complete then "complete import"
       else "interrupted import");
    if not r.Durable.r_complete && r.Durable.r_trace_file <> "" then
      Printf.printf " (resume with: lockdoc import --durable %s %s)" dir
        r.Durable.r_trace_file;
    print_newline ();
    let s = r.Durable.r_store in
    Printf.printf
      "store: %d access(es), %d txn(s), %d lock(s), %d allocation(s), %d \
       type(s)\n"
      (Store.n_accesses s) (Store.n_txns s) (Store.n_locks s)
      (Store.n_allocations s) (Store.n_data_types s);
    if derive then begin
      let dataset = Dataset.of_store s in
      List.iter
        (fun key ->
          Printf.printf "== %s ==\n" key;
          List.iter
            (fun m -> print_endline ("  " ^ Docgen.member_line m))
            (Derivator.derive_type ~tac dataset key))
        (Dataset.type_keys dataset)
    end
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild a store from a durable directory (snapshot + WAL tail) \
          without the source trace. Tolerates torn and corrupt WAL tails: \
          replay stops at the first bad record instead of failing.")
    Term.(const run $ dir_arg $ derive_arg $ tac_arg $ metrics_arg)

(* {2 derive} *)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let derive_cmd =
  let run mode path ty tac json jobs metrics =
    with_metrics metrics @@ fun () ->
    let jobs = resolve_jobs jobs in
    let dataset, _ = load_dataset ~mode path in
    let keys =
      match ty with Some key -> [ key ] | None -> Dataset.type_keys dataset
    in
    if json then
      print_endline
        (Lockdoc_core.Report.mined_to_json
           (List.concat_map (Derivator.derive_type ~tac ~jobs dataset) keys))
    else
      List.iter
        (fun key ->
          Printf.printf "== %s ==\n" key;
          List.iter
            (fun m -> print_endline ("  " ^ Docgen.member_line m))
            (Derivator.derive_type ~tac ~jobs dataset key))
        keys
  in
  Cmd.v (Cmd.info "derive" ~doc:"Mine locking rules from a trace")
    Term.(
      const run $ mode_arg $ trace_file_arg $ type_arg $ tac_arg $ json_arg
      $ jobs_arg $ metrics_arg)

(* {2 doc} *)

let doc_cmd =
  let base_arg =
    Arg.(value & opt string "inode" & info [ "type" ] ~docv:"TYPE"
           ~doc:"Base data type to document (subclasses merged).")
  in
  let run path base tac jobs metrics =
    with_metrics metrics @@ fun () ->
    let dataset, _ = load_dataset path in
    let mined =
      Derivator.derive_merged ~tac ~jobs:(resolve_jobs jobs) dataset base
    in
    print_endline
      (Docgen.generate ~kind:Lockdoc_core.Rule.W ~title:base mined);
    print_endline
      (Docgen.generate ~kind:Lockdoc_core.Rule.R ~title:(base ^ " (reads)") mined)
  in
  Cmd.v (Cmd.info "doc" ~doc:"Generate locking documentation from a trace")
    Term.(
      const run $ trace_file_arg $ base_arg $ tac_arg $ jobs_arg $ metrics_arg)

(* {2 check} *)

(* The documented-rule specs checked by [check] and [profile]. *)
let doc_specs () =
  let module Doc = Lockdoc_ksim.Documentation in
  let module Checker = Lockdoc_core.Checker in
  let module Rule = Lockdoc_core.Rule in
  List.map
    (fun (dr : Doc.doc_rule) ->
      let kind =
        match dr.Doc.d_access with Doc.R -> Rule.R | Doc.W -> Rule.W
      in
      {
        Checker.sp_type = dr.Doc.d_type;
        Checker.sp_member = dr.Doc.d_member;
        Checker.sp_kind = kind;
        Checker.sp_rule = Rule.parse dr.Doc.d_rule;
      })
    Doc.rules

let check_cmd =
  let run mode path jobs metrics =
    with_metrics metrics @@ fun () ->
    let dataset, _ = load_dataset ~mode path in
    let module Checker = Lockdoc_core.Checker in
    let module Rule = Lockdoc_core.Rule in
    let checked =
      Checker.check_many ~jobs:(resolve_jobs jobs) dataset (doc_specs ())
    in
    List.iter
      (fun (c : Checker.checked) ->
        Printf.printf "%-14s %-24s %s  %-40s sr=%6.2f%%  %s\n" c.Checker.c_type
          c.Checker.c_member
          (Rule.access_to_string c.Checker.c_kind)
          (Rule.to_string c.Checker.c_rule)
          (100. *. c.Checker.c_support.Lockdoc_core.Hypothesis.sr)
          (Checker.verdict_to_string c.Checker.c_verdict))
      checked
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check the documented locking rules against a trace")
    Term.(const run $ mode_arg $ trace_file_arg $ jobs_arg $ metrics_arg)

(* {2 fsck} *)

let fsck_cmd =
  let module Diag = Lockdoc_trace.Diag in
  let module Check = Lockdoc_trace.Check in
  let limit_arg =
    Arg.(value & opt non_negative_int 10 & info [ "limit" ] ~docv:"N"
           ~doc:"Maximum diagnostics to print per anomaly group (0 prints \
                 only the per-kind summary).")
  in
  let print_group ~limit title diags =
    if diags <> [] then begin
      Printf.printf "%s (%d):\n" title (List.length diags);
      List.iter
        (fun (kind, n) -> Printf.printf "  %-24s %d\n" kind n)
        (Diag.summarize diags);
      let shown = ref 0 in
      List.iter
        (fun d ->
          if !shown < limit then begin
            incr shown;
            Printf.printf "    %s\n" (Diag.to_string d)
          end)
        diags;
      if List.length diags > limit then
        Printf.printf "    ... %d more\n" (List.length diags - limit)
    end
  in
  let group_json diags =
    let open Lockdoc_core.Report in
    O
      [
        ("total", I (List.length diags));
        ( "fatal",
          I (List.length (List.filter Diag.is_fatal diags)) );
        ( "kinds",
          O (List.map (fun (kind, n) -> (kind, I n)) (Diag.summarize diags))
        );
      ]
  in
  let run path limit json metrics =
    with_metrics metrics @@ fun () ->
    (* Always lenient: the whole point is to survey the damage. Packed
       traces are detected by magic and fed through the binary decoder
       rather than misparsed as text rows. *)
    let binary = Codec.file_is_binary path in
    let trace, reader_diags =
      if binary then
        Codec.decode_string ~mode:Trace.Lenient ~file:path
          (read_file_bytes path)
      else Trace.read ~mode:Trace.Lenient path
    in
    let format = if binary then "binary (LDOCBIN1)" else "text" in
    let stream_diags = Check.run trace in
    let _store, stats = Import.run ~mode:Import.Lenient trace in
    let an = Import.anomaly_total stats in
    let all = reader_diags @ stream_diags in
    let fatal = List.exists Diag.is_fatal all || an > 0 in
    let exit_code = if fatal then 1 else 0 in
    if json then begin
      let open Lockdoc_core.Report in
      print_endline
        (to_string
           (O
              [
                ("file", S path);
                ("format", S format);
                ("layouts", I (List.length trace.Trace.layouts));
                ("events", I (Array.length trace.Trace.events));
                ("reader_anomalies", group_json reader_diags);
                ("stream_anomalies", group_json stream_diags);
                ("import_anomalies", I an);
                ("fatal", S (string_of_bool fatal));
                ("exit_code", I exit_code);
              ]));
      exit exit_code
    end;
    Printf.printf "%s: %s format, %d layout(s), %d event(s)\n" path format
      (List.length trace.Trace.layouts)
      (Array.length trace.Trace.events);
    print_group ~limit "reader anomalies" reader_diags;
    print_group ~limit "stream anomalies" stream_diags;
    if an > 0 then begin
      Printf.printf "import anomalies (%d):\n" an;
      Format.printf "  @[<v>%a@]@." Import.pp_stats stats
    end;
    if all = [] && an = 0 then Printf.printf "clean: no anomalies\n";
    exit exit_code
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Validate a trace file: parse leniently, check stream invariants, \
          replay the importer, and report every anomaly. Exits non-zero if \
          any fatal anomaly was found.")
    Term.(const run $ trace_file_arg $ limit_arg $ json_arg $ metrics_arg)

(* {2 violations} *)

let violations_cmd =
  let limit_arg =
    Arg.(value & opt non_negative_int 20 & info [ "limit" ] ~docv:"N"
           ~doc:"Maximum violations to print.")
  in
  let run mode path ty tac limit json jobs metrics =
    with_metrics metrics @@ fun () ->
    let jobs = resolve_jobs jobs in
    let dataset, _ = load_dataset ~mode path in
    let mined = Derivator.derive_all ~tac ~jobs dataset in
    let violations = Violation.find ~jobs dataset mined in
    let violations =
      match ty with
      | None -> violations
      | Some key -> List.filter (fun v -> v.Violation.v_type = key) violations
    in
    if json then begin
      print_endline (Lockdoc_core.Report.violations_to_json violations);
      exit 0
    end;
    Printf.printf "%d rule-violating observations\n" (List.length violations);
    List.iteri
      (fun i v ->
        if i < limit then
          Printf.printf "%s.%s %s: expected [%s], held [%s] at %s (in %s)\n"
            v.Violation.v_type v.Violation.v_member
            (Lockdoc_core.Rule.access_to_string v.Violation.v_kind)
            (Lockdoc_core.Rule.to_string v.Violation.v_rule)
            (String.concat " -> "
               (List.map Lockdoc_core.Lockdesc.to_string v.Violation.v_held))
            (Lockdoc_trace.Srcloc.to_string v.Violation.v_loc)
            (match v.Violation.v_stack with f :: _ -> f | [] -> "?"))
      violations
  in
  Cmd.v (Cmd.info "violations" ~doc:"Locate locking-rule violations in a trace")
    Term.(
      const run $ mode_arg $ trace_file_arg $ type_arg $ tac_arg $ limit_arg
      $ json_arg $ jobs_arg $ metrics_arg)

(* {2 lockmeter} *)

let lockmeter_cmd =
  let top_arg =
    Arg.(value & opt positive_int 15 & info [ "top" ] ~docv:"N"
           ~doc:"Number of classes to show.")
  in
  let run path top json metrics =
    with_metrics metrics @@ fun () ->
    let trace = Trace.load path in
    let store, _ = Import.run trace in
    let stats = Lockdoc_core.Lockmeter.analyse trace store in
    if json then
      print_endline (Lockdoc_core.Report.lockmeter_to_json stats)
    else print_string (Lockdoc_core.Lockmeter.render ~top stats)
  in
  Cmd.v
    (Cmd.info "lockmeter"
       ~doc:"Per-lock-class usage statistics over a trace (the Lockmeter \
             baseline of the paper's Sec. 3.2)")
    Term.(const run $ trace_file_arg $ top_arg $ json_arg $ metrics_arg)

(* {2 export} *)

let export_cmd =
  let dir_arg =
    Arg.(value & opt string "lockdoc-csv" & info [ "d"; "dir" ] ~docv:"DIR"
           ~doc:"Output directory for the CSV relations.")
  in
  let run path dir metrics =
    with_metrics metrics @@ fun () ->
    let trace = Trace.load path in
    let store, _ = Import.run trace in
    Lockdoc_db.Csv.export ~dir store;
    Printf.printf "exported %d accesses / %d txns / %d locks to %s/{%s}\n"
      (Lockdoc_db.Store.n_accesses store)
      (Lockdoc_db.Store.n_txns store)
      (Lockdoc_db.Store.n_locks store)
      dir
      (String.concat "," Lockdoc_db.Csv.files)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Post-process a trace and export the relational store as CSV \
             (the MariaDB bulk-load interface of the paper's Sec. 6)")
    Term.(const run $ trace_file_arg $ dir_arg $ metrics_arg)

(* {2 relations} *)

let relations_cmd =
  let run path tac metrics =
    with_metrics metrics @@ fun () ->
    let dataset, _ = load_dataset path in
    let mined = Derivator.derive_all ~tac dataset in
    print_string (Lockdoc_core.Relations.render (Lockdoc_core.Relations.analyse mined))
  in
  Cmd.v
    (Cmd.info "relations"
       ~doc:"Report cross-object protection relations mined from EO rules \
             (the paper's future-work extension)")
    Term.(const run $ trace_file_arg $ tac_arg $ metrics_arg)

(* {2 lockdep} *)

let lockdep_cmd =
  let run path json metrics =
    with_metrics metrics @@ fun () ->
    let trace = Trace.load path in
    let store, _ = Import.run trace in
    let report = Lockdoc_core.Lockdep.analyse store in
    if json then print_endline (Lockdoc_core.Report.lockdep_to_json report)
    else print_string (Lockdoc_core.Lockdep.render report)
  in
  Cmd.v
    (Cmd.info "lockdep"
       ~doc:
         "Run the lockdep-style lock-order analysis over a trace (the \
          in-situ baseline the paper contrasts LockDoc with)")
    Term.(const run $ trace_file_arg $ json_arg $ metrics_arg)

(* {2 lint} *)

let lint_cmd =
  let module Lint = Lockdoc_static.Lint in
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Benchmark family to lint against (fs_bench, fsstress, \
                 fs_inod, pipe, symlink, device).")
  in
  let lint_seed_arg =
    Arg.(value & opt checked_int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"PRNG seed for the cross-validation trace.")
  in
  let lint_scale_arg =
    Arg.(value & opt positive_int 1 & info [ "scale" ] ~docv:"N"
           ~doc:"Workload iteration multiplier (trace volume).")
  in
  let run workload seed scale json jobs metrics =
    if not (List.mem workload Run.workload_names) then begin
      Printf.eprintf "lockdoc: unknown workload %S (known: %s)\n" workload
        (String.concat ", " Run.workload_names);
      exit 1
    end;
    with_metrics metrics @@ fun () ->
    let trace = Run.workload_trace ~seed ~scale workload in
    let report = Lint.run ~jobs:(resolve_jobs jobs) ~workload trace in
    if json then
      print_endline (Lockdoc_core.Report.to_string (Lint.to_json report))
    else print_string (Lint.render report)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the whole-program static lock-discipline analysis over the \
          declarative kernel IR and cross-validate it against a dynamic \
          trace of one benchmark family: static access sites are checked \
          against the rules mined from the trace, the static \
          acquisition-order graph is diffed against the dynamic lockdep \
          report, and statically reachable but dynamically unobserved \
          (member, lock-context) pairs are reported as coverage gaps.")
    Term.(
      const run $ workload_arg $ lint_seed_arg $ lint_scale_arg $ json_arg
      $ jobs_arg $ metrics_arg)

(* {2 sanitize} *)

let sanitize_cmd =
  let module Sanitize = Lockdoc_sanitizer.Sanitize in
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Benchmark family to sanitize (fs_bench, fsstress, fs_inod, \
                 pipe, symlink, device).")
  in
  let clean_arg =
    Arg.(value & flag & info [ "clean" ]
           ~doc:"Silence the seeded ground-truth bugs (the zero-finding \
                 baseline). Default: seed them.")
  in
  let sanitize_seed_arg =
    Arg.(value & opt checked_int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"PRNG seed; runs are deterministic per seed.")
  in
  let sanitize_scale_arg =
    Arg.(value & opt positive_int 1 & info [ "scale" ] ~docv:"N"
           ~doc:"Workload iteration multiplier (trace volume).")
  in
  let run workload clean seed scale json jobs metrics =
    if not (List.mem workload Run.workload_names) then begin
      Printf.eprintf "lockdoc: unknown workload %S (known: %s)\n" workload
        (String.concat ", " Run.workload_names);
      exit 1
    end;
    with_metrics metrics @@ fun () ->
    let report =
      Sanitize.run ~jobs:(resolve_jobs jobs) ~seed ~scale ~bugs:(not clean)
        workload
    in
    if json then print_endline (Sanitize.to_json report)
    else print_string (Sanitize.render report)
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Trace one benchmark family and run the sanitizer layer over it: \
          Eraser-style lockset race detection plus lockdep-style \
          irq-safety analysis, cross-validated against the seeded \
          ground-truth bugs and the mined-rule violation scanner.")
    Term.(
      const run $ workload_arg $ clean_arg $ sanitize_seed_arg
      $ sanitize_scale_arg $ json_arg $ jobs_arg $ metrics_arg)

(* {2 replay} *)

let replay_cmd =
  let module Replay = Lockdoc_sanitizer.Replay in
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Benchmark family to replay (fs_bench, fsstress, fs_inod, \
                 pipe, symlink, device).")
  in
  let clean_arg =
    Arg.(value & flag & info [ "clean" ]
           ~doc:"Silence the seeded ground-truth bugs (every finding must \
                 come back refuted). Default: seed them.")
  in
  let replay_seed_arg =
    Arg.(value & opt checked_int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"PRNG seed; directed schedules are deterministic per seed.")
  in
  let replay_scale_arg =
    Arg.(value & opt positive_int 1 & info [ "scale" ] ~docv:"N"
           ~doc:"Workload iteration multiplier (trace volume).")
  in
  let budget_arg =
    Arg.(value & opt positive_int 8 & info [ "budget" ] ~docv:"N"
           ~doc:"Directed schedules per finding per search round (a \
                 positive integer).")
  in
  let run workload clean seed scale budget json jobs metrics =
    if not (List.mem workload Run.workload_names) then begin
      Printf.eprintf "lockdoc: unknown workload %S (known: %s)\n" workload
        (String.concat ", " Run.workload_names);
      exit 1
    end;
    with_metrics metrics @@ fun () ->
    let report =
      Replay.run ~jobs:(resolve_jobs jobs) ~seed ~scale ~budget
        ~bugs:(not clean) workload
    in
    if json then print_endline (Replay.to_json report)
    else print_string (Replay.render report)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute one benchmark family's sanitizer findings under \
          directed schedules: confirm each lockset race, rule violation \
          and irq-unsafe class with a serialized interleaving witness, or \
          refute it with a machine-checked reason (caller-held lock, RCU \
          read section, init/teardown quiescence, budget exhausted).")
    Term.(
      const run $ workload_arg $ clean_arg $ replay_seed_arg
      $ replay_scale_arg $ budget_arg $ json_arg $ jobs_arg $ metrics_arg)

(* {2 profile} *)

let profile_cmd =
  let workload_arg =
    Arg.(value & pos 0 string "mix" & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to profile: $(b,mix) (the full benchmark mix, the \
                 default) or one benchmark family.")
  in
  let run scale seed tac jobs workload json metrics =
    if workload <> "mix" && not (List.mem workload Run.workload_names) then
      begin
        Printf.eprintf "lockdoc: unknown workload %S (known: mix, %s)\n"
          workload
          (String.concat ", " Run.workload_names);
        exit 1
      end;
    let jobs = resolve_jobs jobs in
    Obs.set_enabled true;
    let phase name f = Obs.Span.timed ("profile/" ^ name) f in
    let trace, t_trace =
      phase "tracing" (fun () ->
          if workload = "mix" then
            fst (Run.benchmark_mix ~config:(run_config scale seed) ())
          else Run.workload_trace ~seed ~scale workload)
    in
    let (store, _), t_import = phase "import" (fun () -> Import.run trace) in
    let dataset, t_observations =
      phase "observations" (fun () -> Dataset.of_store store)
    in
    let mined, t_derive =
      phase "derive" (fun () -> Derivator.derive_all ~tac ~jobs dataset)
    in
    let checked, t_check =
      phase "check" (fun () ->
          Lockdoc_core.Checker.check_many ~jobs dataset (doc_specs ()))
    in
    let violations, t_violations =
      phase "violations" (fun () -> Violation.find ~jobs dataset mined)
    in
    let phases =
      [
        ("tracing", t_trace); ("import", t_import);
        ("observations", t_observations); ("derive", t_derive);
        ("check", t_check); ("violations", t_violations);
      ]
    in
    let total =
      List.fold_left
        (fun acc (_, c) ->
          { Obs.Clock.wall = acc.Obs.Clock.wall +. c.Obs.Clock.wall;
            Obs.Clock.cpu = acc.Obs.Clock.cpu +. c.Obs.Clock.cpu })
        { Obs.Clock.wall = 0.; Obs.Clock.cpu = 0. }
        phases
    in
    let snap = Obs.snapshot () in
    let top =
      List.sort
        (fun (na, a) (nb, b) ->
          match compare b a with 0 -> compare na nb | c -> c)
        snap.Obs.sn_counters
    in
    let top = List.filteri (fun i (_, v) -> i < 12 && v > 0) top in
    if json then begin
      let module R = Lockdoc_core.Report in
      let clock_j (c : Obs.Clock.t) =
        R.O
          [
            ("wall_ms", R.F (1000. *. c.Obs.Clock.wall));
            ("cpu_ms", R.F (1000. *. c.Obs.Clock.cpu));
          ]
      in
      print_endline
        (R.to_string
           (R.O
              [
                ("workload", R.S workload);
                ("scale", R.I scale);
                ("seed", R.I seed);
                ("jobs", R.I jobs);
                ( "phases",
                  R.O (List.map (fun (n, c) -> (n, clock_j c)) phases) );
                ("total", clock_j total);
                ( "pipeline",
                  R.O
                    [
                      ("events", R.I (Array.length trace.Trace.events));
                      ("groups", R.I (List.length mined));
                      ("rules_checked", R.I (List.length checked));
                      ("violations", R.I (List.length violations));
                    ] );
                ("counters", R.O (List.map (fun (n, v) -> (n, R.I v)) top));
              ]))
    end
    else begin
      Printf.printf "profile: %s (scale %d, seed %d, jobs %d)\n" workload
        scale seed jobs;
      Printf.printf "%-14s %12s %12s\n" "phase" "wall" "cpu";
      let row name (c : Obs.Clock.t) =
        Printf.printf "%-14s %9.1f ms %9.1f ms\n" name
          (1000. *. c.Obs.Clock.wall)
          (1000. *. c.Obs.Clock.cpu)
      in
      List.iter (fun (n, c) -> row n c) phases;
      row "total" total;
      Printf.printf
        "pipeline: %d event(s), %d group(s), %d rule(s) checked, %d \
         violation(s)\n"
        (Array.length trace.Trace.events)
        (List.length mined) (List.length checked) (List.length violations);
      print_endline "top counters:";
      List.iter (fun (name, v) -> Printf.printf "  %-28s %d\n" name v) top
    end;
    match metrics with Some path -> Obs.write path | None -> ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the pipeline end to end on one workload with metrics enabled \
          and print per-phase wall/cpu timings plus the busiest internal \
          counters. Wall and CPU time are reported separately: CPU time \
          sums over domains and exceeds wall time for parallel phases.")
    Term.(
      const run $ scale_arg $ seed_arg $ tac_arg $ jobs_arg $ workload_arg
      $ json_arg $ metrics_arg)

(* {2 repro} *)

let repro_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (fig1, tab1..tab8, fig7, fig8, sec72, \
                 sanitize, lint); default: all.")
  in
  let run scale seed ids metrics =
    with_metrics metrics @@ fun () ->
    let ids = if ids = [] then Registry.ids else ids in
    let ctx = lazy (Context.create ~scale ~seed ()) in
    List.iter
      (fun id ->
        match Registry.find id with
        | None ->
            Printf.eprintf "unknown experiment %s (known: %s)\n" id
              (String.concat ", " Registry.ids);
            exit 1
        | Some e ->
            print_endline (e.Registry.render ctx);
            print_newline ())
      ids
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Regenerate the paper's evaluation tables/figures")
    Term.(const run $ scale_arg $ seed_arg $ ids_arg $ metrics_arg)

(* {2 serve / feed} *)

let socket_arg =
  Arg.(value & opt string "lockdoc.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let module Server = Lockdoc_serve.Server in
  let max_clients_arg =
    Arg.(value & opt positive_int Server.default_config.Server.max_clients
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Concurrent client connections; extras are rejected with a \
                   structured retry-after.")
  in
  let queue_bytes_arg =
    Arg.(value & opt positive_int Server.default_config.Server.queue_bytes
         & info [ "queue-bytes" ] ~docv:"N"
             ~doc:"Per-session pending-ingest budget in bytes (the \
                   daemon-wide budget is 8x this). Frames that would \
                   overflow it are rejected whole with retry-after.")
  in
  let session_timeout_arg =
    Arg.(value
         & opt positive_float Server.default_config.Server.session_timeout
         & info [ "session-timeout" ] ~docv:"SECONDS"
             ~doc:"Idle seconds before a silent connection is closed and a \
                   detached session is garbage collected.")
  in
  let durable_arg =
    Arg.(value & opt (some string) None & info [ "durable" ] ~docv:"DIR"
           ~doc:"Journal each session's accepted rows under $(docv); a \
                 reconnecting client resumes from the journal even after a \
                 session crash.")
  in
  let tcp_arg =
    Arg.(value & opt (some hostport) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Additionally listen on this TCP endpoint (port 0 binds an \
                 ephemeral port, printed at startup). Both transports serve \
                 the identical protocol and sessions.")
  in
  let run socket tcp max_clients queue_bytes session_timeout durable tac jobs
      metrics =
    with_metrics metrics @@ fun () ->
    let config =
      {
        Server.default_config with
        Server.max_clients;
        queue_bytes;
        total_queue_bytes = 8 * queue_bytes;
        session_timeout;
        durable_root = durable;
        tac;
        jobs = resolve_jobs jobs;
      }
    in
    Printf.printf "lockdoc serve: listening on %s\n%!" socket;
    let on_tcp_port p = Printf.printf "lockdoc serve: listening on tcp port %d\n%!" p in
    Lockdoc_serve.Sockserv.serve ~config ?tcp ~on_tcp_port ~socket ();
    Printf.printf "lockdoc serve: shut down\n"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the supervised analysis daemon: clients stream trace rows \
          over a Unix socket (and optionally TCP, $(b,--tcp)) into isolated \
          per-session imports and seal them into mined rules — sealing runs \
          on its own analysis domain, so other clients keep being served. \
          Session crashes are restarted with capped backoff; with \
          $(b,--durable), sessions survive them with their accepted rows \
          intact.")
    Term.(
      const run $ socket_arg $ tcp_arg $ max_clients_arg $ queue_bytes_arg
      $ session_timeout_arg $ durable_arg $ tac_arg $ jobs_arg $ metrics_arg)

let feed_cmd =
  let module Proto = Lockdoc_serve.Proto in
  let module Sockserv = Lockdoc_serve.Sockserv in
  let session_arg =
    Arg.(value & opt string "default" & info [ "session" ] ~docv:"NAME"
           ~doc:"Session to stream into (resumes if it already exists).")
  in
  let trace_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TRACE"
           ~doc:"Trace file to stream (omit for --query/--shutdown).")
  in
  let query_arg =
    let q =
      Arg.enum
        [
          ("status", Proto.Status); ("metrics", Proto.Metrics);
          ("stream", Proto.Stream_rules);
        ]
    in
    Arg.(value & opt (some q) None & info [ "query" ] ~docv:"WHAT"
           ~doc:"Ask the daemon for $(docv) (status, metrics, or stream) as \
                 JSON instead of streaming a trace. $(b,stream) attaches to \
                 $(b,--session) and answers its current rules from the \
                 online derivator without sealing it.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the daemon to shut down instead of streaming a trace.")
  in
  let tcp_arg =
    Arg.(value & opt (some hostport) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Connect to the daemon over TCP instead of the Unix \
                 socket.")
  in
  let follow_arg =
    Arg.(value & flag & info [ "follow" ]
           ~doc:"While streaming, subscribe to pushed rule updates: the \
                 daemon sends a snapshot and then a delta whenever the \
                 online derivation changes past its debounce, each printed \
                 as one JSON line — no polling.")
  in
  let run socket tcp session trace query shutdown follow json metrics =
    with_metrics metrics @@ fun () ->
    if shutdown then begin
      match Sockserv.request ?tcp ~socket Proto.Shutdown with
      | Proto.Closing { reason } -> Printf.printf "daemon closing: %s\n" reason
      | m -> Printf.printf "%s\n" (Proto.server_to_payload m)
    end
    else
      match query with
      | Some Proto.Stream_rules ->
          print_endline (Sockserv.stream_query ?tcp ~socket ~session ())
      | Some q -> (
          match Sockserv.request ?tcp ~socket (Proto.Query q) with
          | Proto.Info { json } -> print_endline json
          | m ->
              Printf.eprintf "lockdoc: unexpected reply: %s\n"
                (Proto.server_to_payload m);
              exit 1)
      | None -> (
          match trace with
          | None ->
              Printf.eprintf
                "lockdoc: feed needs a TRACE file (or --query/--shutdown)\n";
              exit 1
          | Some path ->
              (* load_trace auto-detects packed traces, so a .bin feeds
                 the same rows the text file would. *)
              let lines =
                Trace.to_lines (or_fail @@ fun () ->
                                load_trace Import.Strict path)
              in
              let follow_cb =
                if follow then Some (fun json -> Printf.printf "%s\n%!" json)
                else None
              in
              let sealed =
                Sockserv.feed ?tcp ?follow:follow_cb ~socket ~session lines
              in
              if json then
                (* Session ids are [A-Za-z0-9._-] (server-enforced before
                   anything can seal), so splicing is JSON-safe. *)
                Printf.printf
                  "{\"session\":\"%s\",\"events\":%d,\"rules\":%s,\"violations\":%s}\n"
                  session sealed.Sockserv.events sealed.Sockserv.rules
                  sealed.Sockserv.violations
              else
                Printf.printf "sealed session %s: %d event(s) analysed\n"
                  session sealed.Sockserv.events)
  in
  Cmd.v
    (Cmd.info "feed"
       ~doc:
         "Stream a trace into a running $(b,lockdoc serve) daemon and seal \
          the session; or query the daemon ($(b,--query)), or stop it \
          ($(b,--shutdown)). With $(b,--follow), pushed rule updates are \
          printed live while streaming. The streaming client survives \
          connection loss and session restarts by resuming from the \
          server's watermark.")
    Term.(
      const run $ socket_arg $ tcp_arg $ session_arg $ trace_opt_arg
      $ query_arg $ shutdown_arg $ follow_arg $ json_arg $ metrics_arg)

let main =
  Cmd.group
    (Cmd.info "lockdoc" ~version:"1.0.0"
       ~doc:"Trace-based analysis of locking in a simulated Linux kernel")
    [
      trace_cmd; import_cmd; pack_cmd; unpack_cmd; recover_cmd; fsck_cmd;
      derive_cmd; doc_cmd;
      check_cmd;
      violations_cmd; lockdep_cmd; lint_cmd; lockmeter_cmd; sanitize_cmd;
      replay_cmd;
      export_cmd;
      relations_cmd; profile_cmd; repro_cmd; serve_cmd; feed_cmd;
    ]

let () = exit (Cmd.eval main)
