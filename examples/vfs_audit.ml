(* VFS locking audit: run the full benchmark mix against the simulated
   kernel, mine locking rules for struct inode across all filesystem
   subclasses, and emit the generated documentation block the paper's
   Fig. 8 shows for fs/inode.c.

   Run with: dune exec examples/vfs_audit.exe *)

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Derivator = Lockdoc_core.Derivator
module Docgen = Lockdoc_core.Docgen

let () =
  let config =
    { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
      Run.scale = 6; Run.faults = true }
  in
  let trace, _coverage = Run.benchmark_mix ~config () in
  Printf.printf "traced %d events\n"
    (Array.length trace.Lockdoc_trace.Trace.events);
  let store, _stats = Import.run trace in
  let dataset = Dataset.of_store store in

  (* Per-subclass view: the same member can have different disciplines in
     different filesystems (paper Sec. 5.3). *)
  Printf.printf "\ni_size write discipline per subclass:\n";
  List.iter
    (fun key ->
      match
        List.find_opt
          (fun m ->
            m.Derivator.m_member = "i_size" && m.Derivator.m_kind = Rule.W)
          (Derivator.derive_type dataset key)
      with
      | Some m ->
          Printf.printf "  %-20s %s (sr %.1f%%)\n" key
            (Rule.to_string m.Derivator.m_winner)
            (100. *. m.Derivator.m_support.Lockdoc_core.Hypothesis.sr)
      | None -> Printf.printf "  %-20s (not exercised)\n" key)
    (List.filter
       (fun k -> String.length k > 6 && String.sub k 0 6 = "inode:")
       (Dataset.type_keys dataset));

  (* Merged view: the documentation generator output for fs/inode.c. *)
  let mined = Derivator.derive_merged dataset "inode" in
  print_newline ();
  print_endline (Docgen.generate ~kind:Rule.W ~title:"inode (writes)" mined);
  print_newline ();
  print_endline (Docgen.generate ~kind:Rule.R ~title:"inode (reads)" mined)
