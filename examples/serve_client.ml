(* Serving: run an analysis daemon and stream a trace into it.

   This example does in one process what `lockdoc serve` and `lockdoc
   feed` do in two: it forks a daemon on a private Unix socket, streams
   a generated workload trace into a named session through the
   fault-tolerant client (which survives connection loss and session
   restarts by resuming from the server's watermark), prints the mined
   rules from the sealed reply, and shuts the daemon down.

   Run with: dune exec examples/serve_client.exe *)

module Trace = Lockdoc_trace.Trace
module Run = Lockdoc_ksim.Run
module Proto = Lockdoc_serve.Proto
module Sockserv = Lockdoc_serve.Sockserv

let () =
  let dir = Filename.temp_file "serve_example" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let socket = Filename.concat dir "lockdoc.sock" in
  match Unix.fork () with
  | 0 -> (
      (* Daemon child: serve until asked to shut down. *)
      try
        Sockserv.serve ~socket ();
        Unix._exit 0
      with _ -> Unix._exit 1)
  | daemon ->
      Printf.printf "daemon forked (pid %d), socket %s\n%!" daemon socket;
      let trace = Run.workload_trace "pipe" in
      let lines = Trace.to_lines trace in
      Printf.printf "streaming %d rows into session 'example'...\n%!"
        (List.length lines);
      let sealed = Sockserv.feed ~socket ~session:"example" lines in
      Printf.printf "sealed: %d events analysed\n" sealed.Sockserv.events;
      Printf.printf "mined rules: %s\n" sealed.Sockserv.rules;
      (match Sockserv.request ~socket (Proto.Query Proto.Status) with
      | Proto.Info { json } -> Printf.printf "daemon status: %s\n" json
      | _ -> prerr_endline "unexpected status reply");
      (match Sockserv.request ~socket Proto.Shutdown with
      | Proto.Closing { reason } -> Printf.printf "daemon closing: %s\n" reason
      | _ -> prerr_endline "unexpected shutdown reply");
      (match Unix.waitpid [] daemon with
      | _, Unix.WEXITED 0 -> print_endline "daemon exited cleanly"
      | _ -> prerr_endline "daemon exited abnormally");
      (try Sys.remove socket with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ()
