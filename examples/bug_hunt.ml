(* Bug hunt: use the rule-violation finder to locate the deliberate
   locking bugs planted in the simulated kernel — including the i_flags
   race that, in the real kernel, the paper's authors reported and a
   kernel developer confirmed (paper Sec. 7.5).

   Run with: dune exec examples/bug_hunt.exe *)

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Fault = Lockdoc_ksim.Fault
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation

let hunt ~faults =
  let config =
    { Run.kernel = { Kernel.default_config with Kernel.seed = 7 };
      Run.scale = 6; Run.faults = faults }
  in
  let trace, _ = Run.benchmark_mix ~config () in
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in
  let mined = Derivator.derive_all dataset in
  Violation.find dataset mined

let () =
  Printf.printf "hunting with fault injection enabled...\n%!";
  let violations = hunt ~faults:true in
  Printf.printf "%d rule-violating observations in %d distinct contexts\n\n"
    (List.length violations)
    (List.length (Violation.contexts violations));

  (* Group by (type, member) and show the hot spots. *)
  let tally = Hashtbl.create 32 in
  List.iter
    (fun v ->
      let key = (v.Violation.v_type, v.Violation.v_member) in
      Hashtbl.replace tally key
        (v.Violation.v_events
        + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    violations;
  let ranked =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  print_endline "hottest suspects (events per member):";
  List.iteri
    (fun i ((ty, member), events) ->
      if i < 10 then Printf.printf "  %4d  %s.%s\n" events ty member)
    ranked;

  (* Zoom into the i_flags bug: report what a developer would need. *)
  print_newline ();
  (match
     List.find_opt
       (fun v -> v.Violation.v_member = "i_flags" && v.Violation.v_kind = Rule.W)
       violations
   with
  | Some v ->
      Printf.printf
        "the confirmed inode_set_flags bug:\n\
        \  member     inode.i_flags (write)\n\
        \  rule       %s\n\
        \  held       %s\n\
        \  location   %s\n\
        \  stack      %s\n"
        (Rule.to_string v.Violation.v_rule)
        (match v.Violation.v_held with
        | [] -> "(no locks at all)"
        | held -> String.concat " -> " (List.map Lockdoc_core.Lockdesc.to_string held))
        (Lockdoc_trace.Srcloc.to_string v.Violation.v_loc)
        (String.concat " <- " v.Violation.v_stack)
  | None -> print_endline "i_flags bug not triggered in this run");

  (* Control experiment: with injection disabled the planted bugs vanish,
     only the kernel's own deliberate lock-free minorities remain. *)
  Printf.printf "\nhunting again with fault injection disabled...\n%!";
  let clean = hunt ~faults:false in
  Printf.printf "%d rule-violating observations remain (deliberate \
                 lock-free fast paths)\n"
    (List.length clean);
  let planted =
    List.filter
      (fun v -> v.Violation.v_member = "i_flags" || v.Violation.v_member = "i_blocks")
      clean
  in
  Printf.printf "planted-bug members among them: %d (expected 0)\n"
    (List.length planted)
