(* Baselines tour: run the related-work analyses the paper positions
   LockDoc against on the very same trace — a lockdep-style lock-order
   validator (Sec. 3.2, in-situ analysis) and a Lockmeter-style usage
   profiler (Sec. 3.2, bottleneck hunting) — then show the one question
   neither can answer and LockDoc can.

   Run with: dune exec examples/lock_profile.exe *)

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Derivator = Lockdoc_core.Derivator
module Lockdep = Lockdoc_core.Lockdep
module Lockmeter = Lockdoc_core.Lockmeter

let () =
  let config =
    { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
      Run.scale = 6; Run.faults = true }
  in
  let trace, _ = Run.benchmark_mix ~config () in
  let store, _ = Import.run trace in

  print_endline "=== lockdep view: is the acquisition order consistent? ===";
  print_endline (Lockdep.render (Lockdep.analyse store));

  print_endline "=== lockmeter view: which locks are hot? ===";
  print_endline (Lockmeter.render ~top:10 (Lockmeter.analyse trace store));

  (* Neither baseline can answer: which lock protects inode.i_state? *)
  print_endline "=== the LockDoc question neither baseline answers ===";
  let dataset = Dataset.of_store store in
  List.iter
    (fun (key, member) ->
      List.iter
        (fun kind ->
          let m = Derivator.derive_member dataset key ~member ~kind in
          Printf.printf "%s.%s (%s) is protected by %s (sr %.1f%%)\n" key
            member
            (Rule.access_to_string kind)
            (Rule.to_string m.Derivator.m_winner)
            (100. *. m.Derivator.m_support.Lockdoc_core.Hypothesis.sr))
        [ Rule.R; Rule.W ])
    [
      ("inode:ext4", "i_state");
      ("journal_head", "b_transaction");
      ("dentry", "d_subdirs");
    ]
