(* Quickstart: the complete LockDoc pipeline on the paper's running
   example (Sec. 4) — a shared clock whose seconds/minutes counters are
   protected by two spinlocks, plus one buggy execution that forgot the
   second lock.

   Run with: dune exec examples/quickstart.exe *)

module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Hypothesis = Lockdoc_core.Hypothesis
module Derivator = Lockdoc_core.Derivator
module Violation = Lockdoc_core.Violation

let () =
  (* Phase 1: trace an instrumented execution (1000 correct ticks, one
     faulty carry). *)
  let trace = Lockdoc_ksim.Clock_example.run () in
  Printf.printf "recorded %d events\n\n"
    (Array.length trace.Lockdoc_trace.Trace.events);

  (* Phase 1b: post-process into the relational store and fold accesses
     into per-transaction observations. *)
  let store, stats = Import.run trace in
  Printf.printf "%d lock operations, %d memory accesses, %d transactions\n\n"
    stats.Import.lock_ops stats.Import.mem_accesses stats.Import.txns;
  let dataset = Dataset.of_store store in

  (* Phase 2: enumerate locking-rule hypotheses for writes to `minutes'
     and show their support — the paper's Tab. 2. *)
  let obs = Dataset.by_member dataset "clock" ~member:"minutes" ~kind:Rule.W in
  Printf.printf "hypotheses for writes to minutes (%d observations):\n"
    (List.length obs);
  List.iter
    (fun (s : Hypothesis.scored) ->
      Printf.printf "  %-28s sa=%2d  sr=%6.2f%%\n"
        (Rule.to_string s.Hypothesis.rule)
        s.Hypothesis.support.Hypothesis.sa
        (100. *. s.Hypothesis.support.Hypothesis.sr))
    (Hypothesis.enumerate_exhaustive obs);

  (* Phase 2b: pick the winner. The faulty execution keeps the true rule
     at 94 % — still above the acceptance threshold, and LockDoc's
     lowest-support selection finds it. *)
  let mined = Derivator.derive_all dataset in
  print_newline ();
  List.iter
    (fun (m : Derivator.mined) ->
      Printf.printf "mined: clock.%s (%s) needs %s\n" m.Derivator.m_member
        (Rule.access_to_string m.Derivator.m_kind)
        (Rule.to_string m.Derivator.m_winner))
    mined;

  (* Phase 3: the rule-violation finder pinpoints the buggy execution. *)
  print_newline ();
  List.iter
    (fun (v : Violation.violation) ->
      Printf.printf
        "VIOLATION: %s.%s written with [%s] held instead of [%s] at %s (in %s)\n"
        v.Violation.v_type v.Violation.v_member
        (String.concat " -> "
           (List.map Lockdoc_core.Lockdesc.to_string v.Violation.v_held))
        (Rule.to_string v.Violation.v_rule)
        (Lockdoc_trace.Srcloc.to_string v.Violation.v_loc)
        (match v.Violation.v_stack with f :: _ -> f | [] -> "?"))
    (Violation.find dataset mined)
