(* Documentation check: validate the kernel's own documented locking
   rules against observed behaviour (the paper's Sec. 7.3) and print a
   per-type report card, highlighting rules the code does not follow.

   Run with: dune exec examples/doc_check.exe *)

module Run = Lockdoc_ksim.Run
module Kernel = Lockdoc_ksim.Kernel
module Doc = Lockdoc_ksim.Documentation
module Import = Lockdoc_db.Import
module Dataset = Lockdoc_core.Dataset
module Rule = Lockdoc_core.Rule
module Checker = Lockdoc_core.Checker

let () =
  let config =
    { Run.kernel = { Kernel.default_config with Kernel.seed = 42 };
      Run.scale = 6; Run.faults = true }
  in
  let trace, _ = Run.benchmark_mix ~config () in
  let store, _ = Import.run trace in
  let dataset = Dataset.of_store store in

  let checked =
    List.map
      (fun (dr : Doc.doc_rule) ->
        let kind = match dr.Doc.d_access with Doc.R -> Rule.R | Doc.W -> Rule.W in
        Checker.check_rule dataset ~ty:dr.Doc.d_type ~member:dr.Doc.d_member
          ~kind (Rule.parse dr.Doc.d_rule))
      Doc.rules
  in

  print_endline "report card (documented rules vs traced behaviour):";
  List.iter
    (fun ty ->
      let s = Checker.summarise checked ty in
      Printf.printf
        "  %-14s %2d rules: %2d unobserved, %2d correct, %2d ambivalent, %2d \
         incorrect\n"
        ty s.Checker.s_rules s.Checker.s_unobserved s.Checker.s_correct
        s.Checker.s_ambivalent s.Checker.s_incorrect)
    Doc.checked_types;

  (* Every rule the code plainly contradicts deserves a closer look: it is
     either a documentation bug or a synchronisation bug (the paper's
     "no authoritative ground truth" dilemma). *)
  print_endline "\nrules the code never follows (documentation or code bug?):";
  List.iter
    (fun (c : Checker.checked) ->
      if c.Checker.c_verdict = Checker.Incorrect then
        Printf.printf "  %s.%s (%s): documented as %s\n" c.Checker.c_type
          c.Checker.c_member
          (Rule.access_to_string c.Checker.c_kind)
          (Rule.to_string c.Checker.c_rule))
    checked;

  print_endline "\nrules only sometimes followed (support < 100%):";
  List.iter
    (fun (c : Checker.checked) ->
      if c.Checker.c_verdict = Checker.Ambivalent then
        Printf.printf "  %s.%s (%s): %s holds for %.1f%% of accesses\n"
          c.Checker.c_type c.Checker.c_member
          (Rule.access_to_string c.Checker.c_kind)
          (Rule.to_string c.Checker.c_rule)
          (100. *. c.Checker.c_support.Lockdoc_core.Hypothesis.sr))
    checked
